/**
 * @file
 * In-sim latency attribution: a per-flow stage ledger
 * (docs/OBSERVABILITY.md, "Attribution & timelines").
 *
 * The span tracer records *what happened*; Attribution answers *where
 * the time went*. It listens to the same TRACE_SPAN/TRACE_FLOW
 * instrumentation stream the tracer captures — the Tracer forwards
 * every record to an attached Attribution sink — and folds each
 * completed request's end-to-end latency into a fixed catalog of
 * pipeline stages:
 *
 *   client backlog, driver submit, doorbell-batch holdoff, SQ wait,
 *   engine parse, scoreboard queue, device service, wire,
 *   MSI-coalesce holdoff, completion drain.
 *
 * The mechanism is a boundary chain, not per-span accounting: every
 * observed record may stamp one of eleven ordered per-flow boundary
 * timestamps (request arrival .. client-visible completion), and at
 * finalize time stage k is simply boundary[k+1] - boundary[k] after a
 * monotonic clamp. Because the stages partition [arrive, done], their
 * sum reconciles with the end-to-end latency *exactly* — the property
 * tools/trace_analyze.py --attribute cross-checks against the Chrome
 * trace, and the 1%-reconciliation acceptance gate of the loadgen
 * bench. Boundaries a design never crosses (e.g. no doorbell batching,
 * or a software baseline with no engine parse) carry forward, so their
 * stages read zero instead of breaking the sum.
 *
 * Like the tracer, Attribution is a pure observer: it never schedules
 * events and never mutates model state, so enabling it leaves the
 * event-firing digest (TraceHasher) bit-identical. With DCS_TRACING
 * compiled out no instrumentation points exist, so an enabled
 * Attribution simply reports empty stage distributions — reports stay
 * schema-valid either way. The ledger is bounded: flows beyond
 * maxLedger are dropped (and counted) rather than growing without
 * bound on a workload that never completes.
 */

#ifndef DCS_SIM_ATTRIBUTION_HH
#define DCS_SIM_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "sim/stats.hh"
#include "sim/stats_registry.hh"
#include "sim/ticks.hh"

namespace dcs {
namespace trace {

/** The stage catalog, in pipeline order. */
enum class Stage : std::uint8_t
{
    ClientBacklog,   //!< arrival -> request leaves the client pool
    DriverSubmit,    //!< ioctl/driver work up to the doorbell post
    DoorbellHoldoff, //!< doorbell batched: post -> actual MMIO write
    SqWait,          //!< doorbell MMIO -> engine starts parsing
    EngineParse,     //!< command-queue parse/validate/dispatch
    ScoreboardQueue, //!< parsed -> first device slot issue
    DeviceService,   //!< device execution up to first wire activity
    Wire,            //!< NIC/wire transmission -> completion queued
    MsiHoldoff,      //!< completion queued -> MSI dispatched (coalesce)
    CompletionDrain, //!< MSI -> client-visible completion callback
    NumStages,
};

constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::NumStages);

/** Stable snake_case stage names (stats paths, JSON fields, docs). */
const char *stageName(Stage s);

/**
 * The per-flow boundary chain. Boundary k opens stage k; the final
 * "done" timestamp arrives with the finalizing record and is not
 * stored per boundary.
 */
enum class Boundary : std::uint8_t
{
    Arrive,      //!< client arrival (loadgen "lg_arrive")
    Submit,      //!< driver entry ("ioctl"/"submit"/"io" span start)
    DbPost,      //!< doorbell value posted to the batcher ("db_post")
    DbFlush,     //!< doorbell MMIO actually written ("doorbell")
    ParseBegin,  //!< engine "parse" span start
    ParseEnd,    //!< engine "parse" span end
    ExecBegin,   //!< first scoreboard "exec:*" (or SSD media) start
    WireBegin,   //!< first NIC "send" span start
    CplQueued,   //!< "cpl_queued"/"msi_raised" at the device
    MsiDispatch, //!< host-side "msi" receipt
    NumBoundaries,
};

constexpr std::size_t kNumBoundaries =
    static_cast<std::size_t>(Boundary::NumBoundaries);

class Tracer;

/** The per-EventQueue attribution engine. */
class Attribution
{
  public:
    /** Ledger bound: in-flight flows tracked at once. */
    static constexpr std::size_t maxLedger = 1u << 16;

    /**
     * Start attributing. Registers the per-stage distributions under
     * @p path in @p reg (detached again on destruction) and flips the
     * owning Tracer's instrumentation gate so records start flowing.
     */
    void enable(stats::Registry &reg, std::string path = "attribution");

    bool enabled() const { return _enabled; }

    /** @name Feed points (called by the Tracer). @{ */
    void observeSpan(Tick start, Tick end, std::string_view name,
                     std::uint64_t flow);
    void observeInstant(Tick ts, std::string_view name,
                        std::uint64_t flow);
    /** @} */

    /** @name Results. @{ */
    const stats::SampledDistribution &
    stage(Stage s) const
    {
        return stages[static_cast<std::size_t>(s)];
    }

    /** End-to-end latency over the same finalized population. */
    const stats::SampledDistribution &endToEnd() const { return e2e; }

    std::uint64_t finalized() const { return _finalized; }
    /** Flows abandoned (reject/drop/out-of-window) or overflowed. */
    std::uint64_t abandoned() const { return _abandoned; }
    std::uint64_t ledgerOverflow() const { return _overflow; }
    std::size_t ledgerSize() const { return ledger.size(); }
    /** @} */

  private:
    friend class Tracer;

    struct Entry
    {
        std::array<Tick, kNumBoundaries> t{};
        std::uint32_t seen = 0; //!< bitmask over Boundary
    };

    void mark(std::uint64_t flow, Boundary b, Tick ts, bool take_max);
    void finalize(std::uint64_t flow, Tick done);
    void abandon(std::uint64_t flow);
    Entry *entryFor(std::uint64_t flow);

    bool _enabled = false;
    /** Set by the Tracer when attached (Tracer::setAttribution). */
    Tracer *tracer = nullptr;

    std::unordered_map<std::uint64_t, Entry> ledger;
    std::array<stats::SampledDistribution, kNumStages> stages;
    stats::SampledDistribution e2e;
    std::uint64_t _finalized = 0;
    std::uint64_t _abandoned = 0;
    std::uint64_t _overflow = 0;
    stats::Group group;
};

} // namespace trace
} // namespace dcs

#endif // DCS_SIM_ATTRIBUTION_HH
