/**
 * @file
 * Deterministic time-series telemetry: a per-EventQueue periodic
 * sampler (docs/OBSERVABILITY.md, "Attribution & timelines").
 *
 * Whole-run aggregates hide transients — burst onset, admission
 * control kicking in, recovery after a holdoff flush. A Timeline
 * snapshots a set of registered gauge closures at a fixed sim-tick
 * cadence into a bounded ring, giving benches a `timeline[]` section
 * in their `--json` reports (bench/report.hh, schema v2).
 *
 * Determinism contract: all sampling events are scheduled *up front*
 * at arm() time, at exact ticks start + k*period. Because they are
 * the earliest-scheduled entries for their tick, they fire before any
 * model event of the same tick, so a sample reads the simulation
 * state "at the start of tick T" — a quantity that is identical at
 * any bench thread count and, for per-node gauges on a cluster, under
 * any event-queue sharding (the per-node event streams are identical
 * by the shard determinism contract). That is what makes merged
 * cluster timelines shard-count-invariant: merge() just sums per-node
 * dumps column-wise, and each input is bit-identical serial vs
 * sharded.
 *
 * Unlike the tracer, an armed Timeline does add (label "timeline")
 * events to the queue — so the event digest changes when it is armed,
 * and is bit-identical to an unarmed run when it is not. Benches keep
 * it opt-in where the digest is part of the output (cluster_bench
 * --timeline).
 */

#ifndef DCS_SIM_TIMELINE_HH
#define DCS_SIM_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace dcs {
namespace stats {

class Timeline
{
  public:
    struct Params
    {
        /** First sample tick (clamped up to now() at arm time). */
        Tick start = 0;
        /** Sampling cadence in sim ticks. */
        Tick period = microseconds(500);
        /** Samples scheduled by arm(). */
        std::size_t samples = 64;
        /** Ring bound: oldest rows beyond this are dropped. */
        std::size_t maxRows = 4096;
    };

    /** A captured time series: plain data, safe to move off-thread. */
    struct Dump
    {
        std::string name;
        Tick period = 0;
        std::vector<std::string> columns;
        std::vector<Tick> ticks;    //!< one per surviving row
        std::vector<double> values; //!< row-major, ticks.size() rows
        std::uint64_t droppedRows = 0;
    };

    /** Register a gauge column; the closure must outlive sampling. */
    void
    addColumn(std::string name, std::function<double()> get)
    {
        cols.push_back(Column{std::move(name), std::move(get)});
    }

    std::size_t columns() const { return cols.size(); }

    /**
     * Schedule every sample now (ticks max(start, now()) + k*period,
     * k < samples). Scheduling up front — rather than chaining — is
     * what pins each sample ahead of same-tick model events; see the
     * file comment. May be called once per Timeline.
     */
    void arm(EventQueue &eq, Params p);

    bool armed() const { return _armed; }
    std::size_t rows() const { return ticks.size(); }

    /** Snapshot the surviving rows (oldest first) under @p name. */
    Dump dump(std::string name) const;

    /**
     * Column-wise sum of same-shape dumps (the cluster merge). All
     * parts must share period, columns, and tick vectors; panics
     * otherwise. Row values add, so per-node gauges become
     * rack-aggregate gauges.
     */
    static Dump merge(std::string name, const std::vector<Dump> &parts);

  private:
    struct Column
    {
        std::string name;
        std::function<double()> get;
    };

    void sampleNow(Tick ts);

    std::vector<Column> cols;
    std::vector<Tick> ticks;    //!< ring, `head` is the oldest row
    std::vector<double> values; //!< row-major ring
    std::size_t head = 0;
    std::size_t maxRows = 0;
    std::uint64_t dropped = 0;
    Tick _period = 0;
    bool _armed = false;
};

} // namespace stats
} // namespace dcs

#endif // DCS_SIM_TIMELINE_HH
