/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are std::function callbacks ordered by (tick, insertion sequence),
 * so two events scheduled for the same tick always fire in the order they
 * were scheduled — determinism does not depend on heap tie-breaking.
 */

#ifndef DCS_SIM_EVENT_QUEUE_HH
#define DCS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/ticks.hh"

namespace dcs {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * The simulation's single global ordering of future work.
 *
 * All hardware models and software-cost models schedule continuations
 * here. The queue is strictly single-threaded.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick delay, std::function<void()> fn);

    /** Schedule @p fn at absolute tick @p when (must be >= now()). */
    EventId scheduleAt(Tick when, std::function<void()> fn);

    /** Cancel a pending event. Cancelling a fired event is a no-op. */
    void deschedule(EventId id);

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit. Events at exactly @p limit still fire.
     */
    Tick runUntil(Tick limit);

    /** Fire at most one event. @return false if the queue was empty. */
    bool step();

    /** True if no events are pending. */
    bool empty() const { return live == 0; }

    /** Number of events executed so far (for stats / debugging). */
    std::uint64_t executed() const { return fired; }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    std::vector<EventId> cancelled;
    Tick _now = 0;
    EventId nextId = 1;
    std::uint64_t fired = 0;
    std::uint64_t live = 0;

    bool isCancelled(EventId id);
};

} // namespace dcs

#endif // DCS_SIM_EVENT_QUEUE_HH
