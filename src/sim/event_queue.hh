/**
 * @file
 * Deterministic discrete-event queue — the simulator's hot path.
 *
 * Events fire in exact (tick, schedule-sequence) order, so two events
 * scheduled for the same tick always fire in the order they were
 * scheduled — determinism does not depend on container tie-breaking.
 *
 * The implementation is a two-level calendar/ladder queue tuned for
 * the traffic the models actually generate:
 *
 *  - a `ready` FIFO holds the tick group currently firing: a
 *    continuation scheduled for the current tick (the dominant
 *    cascade pattern) is an O(1) append and never touches a
 *    comparison-based structure;
 *  - a window of kNumBuckets buckets, each spanning 2^widthShift
 *    ticks, receives near-future events with an O(1) append; a bucket
 *    is sorted by (tick, sequence) only when the simulation reaches
 *    it;
 *  - events beyond the window collect in an unsorted `far` overflow;
 *    when the window drains, a new epoch rebuilds around the earliest
 *    far event with a bucket width adapted to the observed span.
 *
 * Event callbacks are InlineCallbacks living in slot-indexed records:
 * the common schedule -> fire path performs zero heap allocations
 * (sim/event_pool.hh absorbs oversized captures). Cancellation is an
 * O(1) in-place retirement of the record — the (tick, seq) entry left
 * in the calendar is recognized as stale when popped and dropped —
 * replacing the old unordered_set of cancelled ids and its pop-time
 * hashing. Descheduling an event that already fired is a no-op and
 * leaves no bookkeeping behind.
 *
 * For auditing, every event may carry a label (SimObject::schedule
 * passes the object's name) and a trace hook observes each firing as
 * (tick, sequence, label). TraceHasher folds that stream into a single
 * digest so two runs of the same workload can be compared bit-for-bit;
 * the stream is unchanged from the pre-calendar binary-heap queue.
 */

#ifndef DCS_SIM_EVENT_QUEUE_HH
#define DCS_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "sim/attribution.hh"
#include "sim/inline_callback.hh"
#include "sim/stats_registry.hh"
#include "sim/ticks.hh"
#include "sim/tracing.hh"

namespace dcs {

/**
 * Opaque handle identifying a scheduled event (for cancellation).
 * Encodes a record slot and a generation; 0 is never a valid handle.
 */
using EventId = std::uint64_t;

/**
 * The simulation's single global ordering of future work.
 *
 * All hardware models and software-cost models schedule continuations
 * here. The queue is strictly single-threaded; independent testbeds
 * (each owning its queue) may run on different threads concurrently.
 */
class EventQueue
{
  public:
    /** Observer of each event firing: (tick, sequence, label). */
    using TraceFn = std::function<void(Tick, std::uint64_t,
                                       std::string_view)>;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * The stats tree of the simulation driven by this queue. One
     * registry per queue keeps successive testbeds in one process
     * fully independent.
     */
    stats::Registry &stats() { return _stats; }
    const stats::Registry &stats() const { return _stats; }

    /**
     * The span tracer of this simulation (docs/OBSERVABILITY.md).
     * Like the stats registry, one per queue: parallel bench tasks
     * record into isolated buffers and merge serially. Disabled by
     * default; a pure observer of the simulation either way.
     */
    trace::Tracer &tracer() { return _tracer; }
    const trace::Tracer &tracer() const { return _tracer; }

    /**
     * The per-queue latency-attribution engine (sim/attribution.hh).
     * Fed by the tracer's instrumentation stream once enabled; a pure
     * observer, so enabling it never perturbs the event digest.
     */
    trace::Attribution &attribution() { return _attr; }
    const trace::Attribution &attribution() const { return _attr; }

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @param label optional trace label; the referenced storage must
     *        outlive the event (SimObject passes its stable name).
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick delay, InlineCallback fn,
                     std::string_view label = {});

    /** Schedule @p fn at absolute tick @p when (must be >= now()). */
    EventId scheduleAt(Tick when, InlineCallback fn,
                       std::string_view label = {});

    /**
     * Cancel a pending event: O(1), in place. The callback (and any
     * resources it captured) is destroyed immediately. Cancelling an
     * event that already fired — or one already cancelled — is a
     * no-op and leaves no residual bookkeeping.
     */
    void deschedule(EventId id);

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit. Events at exactly @p limit still fire.
     */
    Tick runUntil(Tick limit);

    /** Fire at most one event. @return false if the queue was empty. */
    bool step();

    /**
     * Earliest tick at which anything is still queued, or maxTick if
     * the queue is empty. Cancelled-but-unpopped entries count: the
     * result is a conservative (never too late) lower bound, which is
     * exactly what the sharded run loop needs for its horizon math —
     * a stale entry simply yields one extra barrier round that
     * consumes it. O(1) except when the head of the line is in the
     * unsorted `far` overflow, which is scanned.
     */
    Tick nextPendingTick() const;

    /**
     * Jump the clock forward to @p t without firing anything. Only
     * legal on a fully drained queue (panics otherwise): the sharded
     * run loop uses it to re-align shard clocks after a run so that
     * follow-up work scheduled from any shard cannot land in another
     * shard's past. A no-op when @p t <= now().
     */
    void advanceTo(Tick t);

    /** True if no entries (live or cancelled) remain queued. */
    bool empty() const { return queued == 0; }

    /** Number of events executed so far (for stats / debugging). */
    std::uint64_t executed() const { return fired; }

    /** Number of events ever scheduled (for conservation checks). */
    std::uint64_t scheduled() const { return created; }

    /** Number of events cancelled while still pending. */
    std::uint64_t cancelledPopped() const { return skipped; }

    /** Live events scheduled but not yet fired nor cancelled. */
    std::uint64_t pending() const { return live; }

    /**
     * Install @p fn to observe every firing (pass nullptr to remove).
     * Used by the determinism auditor; costs one branch per event when
     * unset.
     */
    void setTraceHook(TraceFn fn) { traceFn = std::move(fn); }

  private:
    /** Calendar geometry. */
    static constexpr std::size_t kNumBuckets = 256;
    static constexpr std::uint32_t kMaxWidthShift = 16;
    /**
     * A multi-tick front bucket holding more entries than this
     * triggers a window re-tighten (refill() would otherwise re-sort
     * the whole bucket every time an insertion dirties it).
     */
    static constexpr std::size_t kRetightenThreshold = 128;
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t(0);

    /**
     * Callback storage, slot-indexed. A slot is recycled through a
     * free list as soon as its event fires or is cancelled; the
     * generation counter invalidates stale EventId handles and
     * `seq` doubles as the liveness test for calendar entries
     * (seq == 0 means the slot is free).
     */
    struct Record
    {
        InlineCallback fn;
        std::string_view label;
        std::uint64_t seq = 0;
        std::uint32_t gen = 1;
        std::uint32_t nextFree = kNoSlot;
    };

    /** What the calendar orders: 24 bytes, trivially movable. */
    struct QEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    // Declared before statsGroup so the group (which deregisters
    // itself) is destroyed first.
    stats::Registry _stats;
    stats::Group statsGroup;
    trace::Tracer _tracer;
    // After _tracer (the tracer holds a back-pointer) and after
    // _stats (the attribution group detaches on destruction).
    trace::Attribution _attr;

    std::vector<Record> records;
    std::uint32_t freeHead = kNoSlot;

    /** Tick group currently firing (all entries share readyTick). */
    std::vector<QEntry> ready;
    std::size_t readyPos = 0;
    Tick readyTick = 0;
    bool readyValid = false;

    std::array<std::vector<QEntry>, kNumBuckets> buckets;
    std::array<bool, kNumBuckets> bucketSorted{};
    Tick windowStart = 0;
    std::uint32_t widthShift = 10;
    std::size_t curBucket = 0;
    std::vector<QEntry> far;

    TraceFn traceFn;
    Tick _now = 0;
    std::uint64_t fired = 0;
    std::uint64_t skipped = 0;
    std::uint64_t created = 0;
    std::uint64_t live = 0;   //!< scheduled, not yet fired/cancelled
    std::uint64_t queued = 0; //!< entries in ready/buckets/far

    Tick
    windowEnd() const
    {
        return windowStart + (Tick(kNumBuckets) << widthShift);
    }

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);
    void insertEntry(const QEntry &e);
    /** Load the next (tick, seq) group into `ready`; false if none. */
    bool refill();
    /** Re-bucket unconsumed ready entries (early runUntil return). */
    void flushReady();
    /** Choose a width for @p span, then spread `far` from @p lo on. */
    void redistribute(Tick lo, Tick span);
    void rebuildWindow();
    /** Re-anchor the window around an entry below windowStart. */
    void lowerWindow(const QEntry &e);
    /** Narrow the window around an over-dense sorted front bucket. */
    void retighten();
};

/**
 * Folds the (tick, sequence, label) firing stream into one 64-bit
 * FNV-1a digest. Two simulation runs are event-trace identical iff
 * their digests (and event counts) match.
 */
class TraceHasher
{
  public:
    /** Install this hasher as @p eq's trace hook. */
    void
    attach(EventQueue &eq)
    {
        eq.setTraceHook([this](Tick t, std::uint64_t seq,
                               std::string_view label) {
            observe(t, seq, label);
        });
    }

    /** Fold one firing into the digest. */
    void
    observe(Tick t, std::uint64_t seq, std::string_view label)
    {
        mixU64(t);
        mixU64(seq);
        for (const char c : label)
            mixByte(static_cast<std::uint8_t>(c));
        ++n;
    }

    std::uint64_t digest() const { return h; }
    std::uint64_t events() const { return n; }

  private:
    void
    mixByte(std::uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }

    void
    mixU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::uint64_t h = 14695981039346656037ull;
    std::uint64_t n = 0;
};

} // namespace dcs

#endif // DCS_SIM_EVENT_QUEUE_HH
