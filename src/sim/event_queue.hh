/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are std::function callbacks ordered by (tick, insertion sequence),
 * so two events scheduled for the same tick always fire in the order they
 * were scheduled — determinism does not depend on heap tie-breaking.
 *
 * For auditing, every event may carry a label (SimObject::schedule passes
 * the object's name) and a trace hook observes each firing as
 * (tick, event-id, label). TraceHasher folds that stream into a single
 * digest so two runs of the same workload can be compared bit-for-bit.
 */

#ifndef DCS_SIM_EVENT_QUEUE_HH
#define DCS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sim/stats_registry.hh"
#include "sim/ticks.hh"

namespace dcs {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * The simulation's single global ordering of future work.
 *
 * All hardware models and software-cost models schedule continuations
 * here. The queue is strictly single-threaded.
 */
class EventQueue
{
  public:
    /** Observer of each event firing: (tick, event-id, label). */
    using TraceFn = std::function<void(Tick, EventId, std::string_view)>;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * The stats tree of the simulation driven by this queue. One
     * registry per queue keeps successive testbeds in one process
     * fully independent.
     */
    stats::Registry &stats() { return _stats; }
    const stats::Registry &stats() const { return _stats; }

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @param label optional trace label; the referenced storage must
     *        outlive the event (SimObject passes its stable name).
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick delay, std::function<void()> fn,
                     std::string_view label = {});

    /** Schedule @p fn at absolute tick @p when (must be >= now()). */
    EventId scheduleAt(Tick when, std::function<void()> fn,
                       std::string_view label = {});

    /** Cancel a pending event. Cancelling a fired event is a no-op. */
    void deschedule(EventId id);

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would exceed
     * @p limit. Events at exactly @p limit still fire.
     */
    Tick runUntil(Tick limit);

    /** Fire at most one event. @return false if the queue was empty. */
    bool step();

    /** True if no events are pending. */
    bool empty() const { return pq.empty(); }

    /** Number of events executed so far (for stats / debugging). */
    std::uint64_t executed() const { return fired; }

    /** Number of events ever scheduled (for conservation checks). */
    std::uint64_t scheduled() const { return created; }

    /** Number of cancelled events skipped at pop time. */
    std::uint64_t cancelledPopped() const { return skipped; }

    /**
     * Install @p fn to observe every firing (pass nullptr to remove).
     * Used by the determinism auditor; costs one branch per event when
     * unset.
     */
    void setTraceHook(TraceFn fn) { traceFn = std::move(fn); }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        std::function<void()> fn;
        std::string_view label;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    // Declared before statsGroup so the group (which deregisters
    // itself) is destroyed first.
    stats::Registry _stats;
    stats::Group statsGroup;

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    std::unordered_set<EventId> cancelled;
    TraceFn traceFn;
    Tick _now = 0;
    EventId nextId = 1;
    std::uint64_t fired = 0;
    std::uint64_t skipped = 0;
    std::uint64_t created = 0;
    std::uint64_t live = 0;

    bool isCancelled(EventId id);
};

/**
 * Folds the (tick, event-id, label) firing stream into one 64-bit
 * FNV-1a digest. Two simulation runs are event-trace identical iff
 * their digests (and event counts) match.
 */
class TraceHasher
{
  public:
    /** Install this hasher as @p eq's trace hook. */
    void
    attach(EventQueue &eq)
    {
        eq.setTraceHook([this](Tick t, EventId id, std::string_view label) {
            observe(t, id, label);
        });
    }

    /** Fold one firing into the digest. */
    void
    observe(Tick t, EventId id, std::string_view label)
    {
        mixU64(t);
        mixU64(id);
        for (const char c : label)
            mixByte(static_cast<std::uint8_t>(c));
        ++n;
    }

    std::uint64_t digest() const { return h; }
    std::uint64_t events() const { return n; }

  private:
    void
    mixByte(std::uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }

    void
    mixU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::uint64_t h = 14695981039346656037ull;
    std::uint64_t n = 0;
};

} // namespace dcs

#endif // DCS_SIM_EVENT_QUEUE_HH
