/**
 * @file
 * Open-addressing hash map for hot-path point lookups.
 *
 * Linear probing over a power-of-two slot array with backward-shift
 * deletion (no tombstones), capped at 50% load. Lookup, insert and
 * erase are O(1) with no per-element heap allocation; the table only
 * reallocates while growing past its high-water mark, so a bounded
 * working set reaches a steady state with zero allocations.
 *
 * Determinism contract: the map is intentionally NOT iterable — probe
 * order depends on the hash function, so exposing iteration would
 * leak layout into simulation results. Every consumer does keyed
 * point queries only, which are layout-independent.
 */

#ifndef DCS_SIM_PROBE_MAP_HH
#define DCS_SIM_PROBE_MAP_HH

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "sim/check.hh"

namespace dcs {

/** splitmix64 finalizer: cheap, well-mixed integer hash. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Default ProbeMap hasher: integral keys through mix64. */
struct MixHash
{
    template <typename K>
    std::uint64_t
    operator()(const K &k) const
    {
        static_assert(std::is_integral_v<K>,
                      "provide a custom hasher for non-integral keys");
        return mix64(static_cast<std::uint64_t>(k));
    }
};

/**
 * The map. @p K and @p V must be default-constructible and copyable;
 * @p HashFn must return a well-mixed 64-bit value (linear probing
 * degenerates under clustered hashes).
 */
template <typename K, typename V, typename HashFn = MixHash>
class ProbeMap
{
  public:
    /** Pointer to the value for @p k, or nullptr. Never allocates. */
    V *
    find(const K &k)
    {
        if (n == 0)
            return nullptr;
        for (std::size_t i = slotOf(k);; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (!s.used)
                return nullptr;
            if (s.key == k)
                return &s.val;
        }
    }

    const V *
    find(const K &k) const
    {
        return const_cast<ProbeMap *>(this)->find(k);
    }

    /**
     * Value for @p k, inserting a default-constructed one if absent
     * (std::unordered_map::operator[] semantics).
     */
    V &
    operator[](const K &k)
    {
        if ((n + 1) * 2 > cap)
            grow();
        for (std::size_t i = slotOf(k);; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (!s.used) {
                s.used = true;
                s.key = k;
                s.val = V{};
                ++n;
                return s.val;
            }
            if (s.key == k)
                return s.val;
        }
    }

    /** Insert only if absent; returns true when the insert happened. */
    bool
    emplaceIfAbsent(const K &k, const V &v)
    {
        if ((n + 1) * 2 > cap)
            grow();
        for (std::size_t i = slotOf(k);; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (!s.used) {
                s.used = true;
                s.key = k;
                s.val = v;
                ++n;
                return true;
            }
            if (s.key == k)
                return false;
        }
    }

    /** Remove @p k; returns true if it was present. */
    bool
    erase(const K &k)
    {
        if (n == 0)
            return false;
        std::size_t i = slotOf(k);
        for (;; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (!s.used)
                return false;
            if (s.key == k)
                break;
        }
        // Backward-shift deletion: pull displaced elements of the same
        // probe chain into the hole so no tombstones accumulate.
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
            Slot &s = slots[j];
            if (!s.used)
                break;
            const std::size_t ideal = slotOf(s.key);
            // Move s into the hole unless its ideal slot lies in
            // (hole, j] cyclically (then it is already reachable).
            const std::size_t dist_hole = (j - hole) & mask;
            const std::size_t dist_ideal = (j - ideal) & mask;
            if (dist_ideal >= dist_hole) {
                slots[hole] = s;
                s.used = false;
                s.val = V{};
                hole = j;
            }
        }
        slots[hole].used = false;
        slots[hole].val = V{};
        --n;
        return true;
    }

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }

    void
    clear()
    {
        for (std::size_t i = 0; i < cap; ++i)
            slots[i] = Slot{};
        n = 0;
    }

  private:
    struct Slot
    {
        K key{};
        V val{};
        bool used = false;
    };

    std::size_t
    slotOf(const K &k) const
    {
        return static_cast<std::size_t>(hash(k)) & mask;
    }

    void
    grow()
    {
        const std::size_t newcap = cap ? cap * 2 : 16;
        auto old = std::move(slots);
        const std::size_t oldcap = cap;
        slots = std::make_unique<Slot[]>(newcap);
        cap = newcap;
        mask = newcap - 1;
        n = 0;
        for (std::size_t i = 0; i < oldcap; ++i) {
            if (old[i].used)
                emplaceIfAbsent(old[i].key, old[i].val);
        }
    }

    std::unique_ptr<Slot[]> slots;
    std::size_t cap = 0;
    std::size_t mask = 0;
    std::size_t n = 0;
    HashFn hash{};
};

} // namespace dcs

#endif // DCS_SIM_PROBE_MAP_HH
