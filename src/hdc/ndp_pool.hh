/**
 * @file
 * Near-device processing unit pool (paper §III-D, Table III).
 *
 * A set of function-specific IP cores processing data in the engine's
 * intermediate buffers. A multi-chunk command streams its chunks, in
 * order, through one unit (hash state is sequential); independent
 * commands run on different units in parallel — which is exactly how
 * the paper reaches 10 Gbps from sub-Gbps cores.
 */

#ifndef DCS_HDC_NDP_POOL_HH
#define DCS_HDC_NDP_POOL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "hdc/scoreboard.hh"
#include "hdc/timing.hh"
#include "ndp/hash.hh"
#include "ndp/transform.hh"

namespace dcs {
namespace hdc {

class HdcEngine;

/** Packing of Entry::aux for NDP entries. */
struct NdpAux
{
    std::uint64_t streamOffset = 0; //!< byte offset within the command
    bool last = false;              //!< final chunk (finalize digest)

    static NdpAux
    unpack(std::uint64_t v)
    {
        return {v >> 1, (v & 1) != 0};
    }

    std::uint64_t
    pack() const
    {
        return (streamOffset << 1) | (last ? 1 : 0);
    }
};

/** The pool. */
class NdpPool
{
  public:
    NdpPool(HdcEngine &engine, const HdcTiming &timing,
            double target_gbps = 10.0);

    /**
     * Begin a streamed command. @p result_slot_off is the engine
     * BRAM offset where the final digest (if any) is deposited.
     */
    void beginCommand(std::uint32_t cmd_id, ndp::Function fn,
                      std::vector<std::uint8_t> aux,
                      std::uint64_t result_slot_off);

    /** Process one chunk (scoreboard entry with DevClass::NdpUnit). */
    void issue(const Entry &e);

    /** Drop per-command stream state (engine calls at cmd retire). */
    void endCommand(std::uint32_t cmd_id);

    /**
     * Completion: entry id + actual output length (differs from the
     * input length for compression).
     */
    std::function<void(std::uint32_t entry_id, std::uint64_t out_len)>
        onComplete;

    int unitsFor(ndp::Function fn) const;
    std::uint64_t chunksProcessed() const { return chunks; }

  private:
    struct Stream
    {
        ndp::Function fn = ndp::Function::None;
        std::vector<std::uint8_t> aux;
        std::unique_ptr<ndp::HashFunction> hash;
        std::uint64_t resultSlotOff = 0;
        int unit = -1;
    };

    struct UnitSet
    {
        std::vector<Tick> freeAt; //!< per-unit busy cursor
        int rr = 0;               //!< round-robin assignment
    };

    HdcEngine &engine;
    const HdcTiming &timing;
    double targetGbps;

    std::unordered_map<std::uint32_t, Stream> streams;
    std::unordered_map<int, UnitSet> units; //!< keyed by (int)Function
    std::uint64_t chunks = 0;

    UnitSet &unitsOf(ndp::Function fn);
};

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_NDP_POOL_HH
