/**
 * @file
 * Near-device processing unit pool (paper §III-D, Table III).
 *
 * A set of function-specific IP cores processing data in the engine's
 * intermediate buffers. A multi-chunk command streams its chunks, in
 * order, through one unit (hash state is sequential); independent
 * commands run on different units in parallel — which is exactly how
 * the paper reaches 10 Gbps from sub-Gbps cores.
 *
 * Stream state is pooled: one slot per engine command-queue entry,
 * addressed by cmd_id modulo the pool size, with hash objects cached
 * per slot and reset() between occupants — steady-state command churn
 * touches no hash-object or map allocation.
 */

#ifndef DCS_HDC_NDP_POOL_HH
#define DCS_HDC_NDP_POOL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "hdc/scoreboard.hh"
#include "hdc/timing.hh"
#include "ndp/hash.hh"
#include "ndp/transform.hh"
#include "sim/small_vec.hh"

namespace dcs {
namespace hdc {

class HdcEngine;

/** Packing of Entry::aux for NDP entries. */
struct NdpAux
{
    std::uint64_t streamOffset = 0; //!< byte offset within the command
    bool last = false;              //!< final chunk (finalize digest)

    static NdpAux
    unpack(std::uint64_t v)
    {
        return {v >> 1, (v & 1) != 0};
    }

    std::uint64_t
    pack() const
    {
        return (streamOffset << 1) | (last ? 1 : 0);
    }
};

/** The pool. */
class NdpPool
{
  public:
    /** Stream-slot count; must match the engine's command queue so
     *  cmd_id % kStreams is collision-free among live commands. */
    static constexpr std::uint32_t kStreams = 64;

    NdpPool(HdcEngine &engine, const HdcTiming &timing,
            double target_gbps = 10.0);

    /**
     * Begin a streamed command. @p result_slot_off is the engine
     * BRAM offset where the final digest (if any) is deposited.
     */
    void beginCommand(std::uint32_t cmd_id, ndp::Function fn,
                      std::span<const std::uint8_t> aux,
                      std::uint64_t result_slot_off);

    /** Process one chunk (scoreboard entry with DevClass::NdpUnit). */
    void issue(const Entry &e);

    /** Drop per-command stream state (engine calls at cmd retire). */
    void endCommand(std::uint32_t cmd_id);

    /**
     * Completion: entry id + actual output length (differs from the
     * input length for compression).
     */
    std::function<void(std::uint32_t entry_id, std::uint64_t out_len)>
        onComplete;

    int unitsFor(ndp::Function fn) const;
    std::uint64_t chunksProcessed() const { return chunks; }
    /** Streams begun and not yet ended (quiesce gauge). */
    std::size_t activeStreams() const { return liveStreams; }

  private:
    struct StreamSlot
    {
        std::uint32_t cmdId = 0;
        bool inUse = false;
        ndp::Function fn = ndp::Function::None;
        SmallVec<std::uint8_t, 48> aux;
        /** Cached hash object, reset() between occupants. */
        std::unique_ptr<ndp::HashFunction> hash;
        ndp::Function hashFn = ndp::Function::None;
        std::uint64_t resultSlotOff = 0;
        int unit = -1;
    };

    struct UnitSet
    {
        std::vector<Tick> freeAt; //!< per-unit busy cursor
        int rr = 0;               //!< round-robin assignment
    };

    HdcEngine &engine;
    const HdcTiming &timing;
    double targetGbps;

    std::array<StreamSlot, kStreams> streams;
    std::size_t liveStreams = 0;
    /** Indexed by (int)Function; sized lazily on first use. */
    std::array<UnitSet, 8> units;
    std::uint64_t chunks = 0;

    StreamSlot &streamOf(std::uint32_t cmd_id, const char *what);
    UnitSet &unitsOf(ndp::Function fn);
};

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_NDP_POOL_HH
