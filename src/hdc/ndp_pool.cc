#include "hdc/ndp_pool.hh"

#include <algorithm>

#include "hdc/hdc_engine.hh"
#include "ndp/aes256.hh"
#include "ndp/deflate.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdc {

static_assert(NdpPool::kStreams == HdcEngine::cmdQueueEntries,
              "stream slots must mirror the engine command queue");

NdpPool::NdpPool(HdcEngine &engine, const HdcTiming &timing,
                 double target_gbps)
    : engine(engine), timing(timing), targetGbps(target_gbps)
{
}

int
NdpPool::unitsFor(ndp::Function fn) const
{
    return ndpUnitsFor(fn, targetGbps);
}

NdpPool::UnitSet &
NdpPool::unitsOf(ndp::Function fn)
{
    UnitSet &us = units[static_cast<std::size_t>(fn)];
    if (us.freeAt.empty())
        us.freeAt.assign(static_cast<std::size_t>(unitsFor(fn)), 0);
    return us;
}

NdpPool::StreamSlot &
NdpPool::streamOf(std::uint32_t cmd_id, const char *what)
{
    StreamSlot &s = streams[cmd_id % kStreams];
    if (!s.inUse || s.cmdId != cmd_id)
        panic("hdc.ndp: %s for unregistered command %u", what, cmd_id);
    return s;
}

void
NdpPool::beginCommand(std::uint32_t cmd_id, ndp::Function fn,
                      std::span<const std::uint8_t> aux,
                      std::uint64_t result_slot_off)
{
    StreamSlot &s = streams[cmd_id % kStreams];
    if (s.inUse)
        panic("hdc.ndp: stream slot collision: %u vs live %u", cmd_id,
              s.cmdId);
    s.cmdId = cmd_id;
    s.inUse = true;
    s.fn = fn;
    s.aux.assign(aux.data(), aux.size());
    s.resultSlotOff = result_slot_off;
    switch (fn) {
      case ndp::Function::Md5:
      case ndp::Function::Sha1:
      case ndp::Function::Sha256:
      case ndp::Function::Crc32:
        // Reuse the slot's cached hash object when the algorithm
        // matches; reset() restores the initial state without an
        // allocation.
        if (s.hash && s.hashFn == fn) {
            s.hash->reset();
        } else {
            s.hash = ndp::makeHash(ndp::functionName(fn));
            s.hashFn = fn;
        }
        break;
      // Non-digest functions carry no hash state.
      // dcslint: allow(silent-switch-default): no hash state to reset
      default:
        break;
    }
    // Pin the stream to a unit round-robin.
    UnitSet &us = unitsOf(fn);
    s.unit = us.rr;
    us.rr = (us.rr + 1) % static_cast<int>(us.freeAt.size());
    ++liveStreams;
}

void
NdpPool::endCommand(std::uint32_t cmd_id)
{
    StreamSlot &s = streamOf(cmd_id, "endCommand");
    s.inUse = false;
    DCS_CHECK_GT(liveStreams, std::size_t{0}, "stream pool underflow");
    --liveStreams;
}

void
NdpPool::issue(const Entry &e)
{
    StreamSlot &s = streamOf(e.cmdId, "chunk");
    const NdpAux aux = NdpAux::unpack(e.aux);
    ++chunks;

    // Occupy the pinned unit at its per-unit throughput (Table III).
    UnitSet &us = unitsOf(s.fn);
    Tick &unit_free = us.freeAt[static_cast<std::size_t>(s.unit)];
    const Tick start = std::max(engine.now(), unit_free);
    const Tick compute = transferTime(e.len, ndpSpec(s.fn).perUnitGbps);
    const Tick finish = start + compute;
    unit_free = finish;

#ifdef DCS_TRACING
    // Units serialize their chunks, so each unit is its own exclusive
    // lane; the track name is built only when recording is on.
    if (engine.tracer().enabled())
        engine.tracer().span(start, compute,
                             engine.name() + ".ndp/" +
                                 ndp::functionName(s.fn) + "#" +
                                 std::to_string(s.unit),
                             "compute", e.flow, /*lane_exclusive=*/true);
#endif

    engine.schedule(finish - engine.now(), [this, e, aux] {
        StreamSlot &stream = streamOf(e.cmdId, "finish");

        // Functional processing over shared views of engine DRAM —
        // the payload is not copied out of the buffers.
        const BufChain input = engine.dram().borrow(e.src, e.len);
        std::uint64_t out_len = e.len;

        switch (stream.fn) {
          case ndp::Function::Md5:
          case ndp::Function::Sha1:
          case ndp::Function::Sha256:
          case ndp::Function::Crc32: {
            // Digests stream per segment; pass-through moves views.
            for (const Buffer &seg : input.segments())
                stream.hash->update(seg.span());
            if (e.dst != e.src)
                engine.dram().adopt(e.dst, input);
            if (aux.last) {
                const auto digest = stream.hash->finish();
                engine.writeResult(e.cmdId, digest);
            }
            break;
          }
          case ndp::Function::Aes256: {
            if (stream.aux.size() < ndp::Aes256::keySize + 8)
                panic("hdc.ndp: aes command without key material");
            std::uint64_t nonce = 0;
            for (int i = 0; i < 8; ++i)
                nonce |= std::uint64_t(
                             stream.aux[ndp::Aes256::keySize + i])
                         << (8 * i);
            // CTR seek to the chunk's stream offset.
            ndp::Aes256Ctr ctr({stream.aux.data(), ndp::Aes256::keySize},
                               nonce);
            ctr.seek(aux.streamOffset);
            // Encrypt segment-by-segment into one fresh output slab
            // (the keystream carries across calls), then install it.
            Buffer out = Buffer::allocate(e.len);
            std::uint8_t *op = out.mutableData();
            for (const Buffer &seg : input.segments()) {
                ctr.transformInto(seg.span(), op);
                op += seg.size();
            }
            engine.dram().adopt(e.dst, BufChain(std::move(out)));
            break;
          }
          case ndp::Function::Gzip: {
            const Buffer flat = input.flatten();
            auto out = ndp::gzipCompress(flat.span());
            out_len = out.size();
            engine.dram().adopt(
                e.dst, BufChain(Buffer::fromVector(std::move(out))));
            break;
          }
          case ndp::Function::Gunzip: {
            const Buffer flat = input.flatten();
            auto out = ndp::gzipDecompress(flat.span());
            out_len = out.size();
            engine.dram().adopt(
                e.dst, BufChain(Buffer::fromVector(std::move(out))));
            break;
          }
          case ndp::Function::None: {
            if (e.dst != e.src)
                engine.dram().adopt(e.dst, input);
            break;
          }
          default:
            panic("hdc.ndp: unsupported function");
        }

        if (onComplete)
            onComplete(e.id, out_len);
    });
}

} // namespace hdc
} // namespace dcs
