#include "hdc/nic_controller.hh"

#include <cstring>

#include "hdc/hdc_engine.hh"
#include "nic/nic.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdc {

HdcNicController::HdcNicController(HdcEngine &engine,
                                   const HdcTiming &timing)
    : engine(engine), timing(timing), track(engine.name() + ".nicc")
{
}

const char *
HdcNicController::engineName() const
{
    return engine.name().c_str();
}

void
HdcNicController::configure(Addr nic_bar0, std::uint32_t ring_entries,
                            std::uint64_t send_ring_off,
                            std::uint64_t send_cpl_off,
                            std::uint64_t recv_ring_off,
                            std::uint64_t recv_cpl_off,
                            std::uint64_t hdr_arena_off,
                            std::uint64_t recv_arena_dram_off,
                            std::uint32_t recv_buf_size, std::uint32_t mss_)
{
    nicBar0 = nic_bar0;
    entries = ring_entries;
    sendRingOff = send_ring_off;
    sendCplOff = send_cpl_off;
    recvRingOff = recv_ring_off;
    recvCplOff = recv_cpl_off;
    hdrArenaOff = hdr_arena_off;
    recvArenaOff = recv_arena_dram_off;
    recvBufSize = recv_buf_size;
    mss = mss_;
    sendSlotToEntry.assign(entries, SendInflight{});

    const auto &p = engine.params();
    auto defer = [this](Tick d, std::function<void()> fn) {
        engine.schedule(d, std::move(fn));
    };
    sendDb.configure(
        p.doorbellBatch, p.doorbellHoldoff,
        [this](std::uint32_t pidx, std::uint64_t tflow) {
            TRACE_FLOW(engine.tracer(), engine.now(), track,
                       "send_doorbell", tflow);
            engine.engMmioWrite(nicBar0 + nic::reg::sendDoorbell, pidx, 4);
        },
        defer);
    recvDb.configure(
        p.doorbellBatch, p.doorbellHoldoff,
        [this](std::uint32_t pidx, std::uint64_t) {
            engine.engMmioWrite(nicBar0 + nic::reg::recvDoorbell, pidx, 4);
        },
        defer);
    configured = true;
}

void
HdcNicController::startRx()
{
    if (!configured)
        panic("hdc.nic: startRx before configure");
    postRecvBuffers();
}

void
HdcNicController::postRecvBuffers()
{
    // Fill the whole receive ring with DRAM frame buffers, then ring
    // the NIC's receive doorbell once.
    for (std::uint32_t i = 0; i < entries; ++i) {
        nic::RecvDesc d;
        d.bufAddr =
            engine.dramBus(recvArenaOff + std::uint64_t(i) * recvBufSize);
        d.bufLen = recvBufSize;
        engine.bram().write(recvRingOff +
                                std::uint64_t(i) * sizeof(nic::RecvDesc),
                            &d, sizeof(d));
    }
    recvPidx = entries;
    recvDb.post(recvPidx, 0);
}

void
HdcNicController::registerConnection(std::uint32_t conn_id,
                                     net::FlowInfo out,
                                     std::uint32_t next_rx_seq)
{
    conns[conn_id] = Conn{out, next_rx_seq};
}

const net::FlowInfo &
HdcNicController::flowOf(std::uint32_t conn_id) const
{
    const Conn *c = conns.find(conn_id);
    if (!c)
        panic("hdc.nic: unknown connection %u", conn_id);
    return c->out;
}

std::uint32_t
HdcNicController::reserveRxRange(std::uint32_t conn_id, std::uint64_t e_len)
{
    Conn *c = conns.find(conn_id);
    if (!c)
        panic("hdc.nic: reserve on unknown connection %u", conn_id);
    const std::uint32_t start = c->nextRxSeq;
    c->nextRxSeq += static_cast<std::uint32_t>(e_len);
    return start;
}

void
HdcNicController::issueSend(const Entry &e)
{
    if (!configured)
        panic("hdc.nic: send before configure");
    Conn *cptr = conns.find(static_cast<std::uint32_t>(e.aux));
    if (!cptr)
        panic("hdc.nic: send on unknown connection %llu",
              (unsigned long long)e.aux);
    Conn &conn = *cptr;

    ++sends;
    const std::uint32_t index = sendPidx % entries;

    // Header generation in hardware: build the template into the BRAM
    // header buffer; the NIC's LSO engine stamps per-segment fields.
    const net::FlowInfo flow = conn.out;
    conn.out.seq += static_cast<std::uint32_t>(e.len);
    const auto hdr =
        net::buildHeaders(flow, std::span<const std::uint8_t>{}, 0);
    const std::uint64_t hdr_slot = hdrArenaOff + std::uint64_t(index) * 64;
    engine.bram().write(hdr_slot, hdr.data(), hdr.size());

    nic::SendDesc desc;
    desc.hdrAddr = engine.bramBus(hdr_slot);
    desc.hdrLen = net::fullHeaderLen;
    desc.payloadAddr = engine.dramBus(e.src);
    desc.payloadLen = static_cast<std::uint32_t>(e.len);
    desc.flags = 1; // LSO
    desc.mss = mss;
    engine.bram().write(sendRingOff +
                            std::uint64_t(index) * sizeof(nic::SendDesc),
                        &desc, sizeof(desc));

    SendInflight &slot = sendSlotToEntry[index];
    if (slot.live)
        panic("hdc.nic: send ring lap onto live slot %u", index);
    slot = SendInflight{e.id, e.flow, engine.now(), true};
    ++sendsLive;
    ++sendPidx;
    engine.schedule(timing.cycles(timing.nicCmdBuildCycles),
                    [this, pidx = sendPidx, tflow = e.flow] {
                        sendDb.post(pidx, tflow);
                    });
}

void
HdcNicController::issueGather(const Entry &e)
{
    GatherOp op;
    op.entryId = e.id;
    op.connId = static_cast<std::uint32_t>(e.aux);
    op.startSeq = static_cast<std::uint32_t>(e.src);
    op.len = e.len;
    op.dstDramOff = e.dst;
    op.traceFlow = e.flow;
    op.issuedAt = engine.now();
    gathers.push_back(op);

    // Frames that raced ahead of the command sit in the receive
    // buffers; claim any that belong to this op now.
    for (auto it = unclaimedFrames.begin();
         it != unclaimedFrames.end();) {
        auto parsed = net::parseFrame(*it);
        if (parsed && tryGather(*parsed, *it))
            it = unclaimedFrames.erase(it);
        else
            ++it;
    }
}

void
HdcNicController::onBramWrite(std::uint64_t bram_off, std::uint64_t len)
{
    (void)len;
    if (!configured)
        return;
    const std::uint64_t send_cpl_size =
        std::uint64_t(entries) * sizeof(nic::CplEntry);
    if (bram_off >= sendCplOff && bram_off < sendCplOff + send_cpl_size) {
        handleSendCpl();
        return;
    }
    const std::uint64_t recv_cpl_size =
        std::uint64_t(entries) * sizeof(nic::CplEntry);
    if (bram_off >= recvCplOff && bram_off < recvCplOff + recv_cpl_size) {
        handleRecvCpl();
        return;
    }
}

void
HdcNicController::handleSendCpl()
{
    for (;;) {
        const std::uint32_t index = sendCplCidx % entries;
        nic::CplEntry e;
        engine.bram().read(sendCplOff +
                               std::uint64_t(index) * sizeof(nic::CplEntry),
                           &e, sizeof(e));
        if (e.seqNo != sendCplCidx + 1)
            return; // slot not yet produced for this lap
        SendInflight &slot = sendSlotToEntry[index];
        if (!slot.live)
            panic("hdc.nic: completion for untracked send slot %u", index);
        ++sendCplCidx;
        const std::uint32_t entry_id = slot.entry;
        TRACE_SPAN(engine.tracer(), slot.submitted,
                   engine.now() - slot.submitted, track, "send",
                   slot.flow);
        slot.live = false;
        DCS_CHECK_GT(sendsLive, std::size_t{0}, "send slot underflow");
        --sendsLive;
        engine.schedule(timing.cycles(timing.nicCplCycles),
                        [this, entry_id] {
                            if (onComplete)
                                onComplete(entry_id);
                        });
    }
}

void
HdcNicController::handleRecvCpl()
{
    for (;;) {
        const std::uint32_t index = recvCplCidx % entries;
        nic::CplEntry e;
        engine.bram().read(recvCplOff +
                               std::uint64_t(index) * sizeof(nic::CplEntry),
                           &e, sizeof(e));
        if (e.seqNo != recvCplCidx + 1)
            return; // slot not yet produced for this lap
        ++recvCplCidx;

        // Borrow the frame from the DRAM receive buffer: shared views,
        // no copy. Recycling the buffer below is safe because later
        // writes into the arena copy-on-write around these views.
        BufChain frame =
            engine.dram().borrow(recvArenaOff +
                                     std::uint64_t(index) * recvBufSize,
                                 e.value);

        // Recycle the buffer.
        nic::RecvDesc d;
        d.bufAddr =
            engine.dramBus(recvArenaOff + std::uint64_t(index) * recvBufSize);
        d.bufLen = recvBufSize;
        engine.bram().write(recvRingOff +
                                std::uint64_t(index) * sizeof(nic::RecvDesc),
                            &d, sizeof(d));
        ++recvPidx;
        recvDb.post(recvPidx, 0);

        gatherFrame(std::move(frame));
    }
}

bool
HdcNicController::tryGather(const net::ParsedFrame &parsed,
                            const BufChain &frame)
{
    // Find the gather op covering this sequence range.
    for (auto it = gathers.begin(); it != gathers.end(); ++it) {
        GatherOp &op = *it;
        const Conn *cptr = conns.find(op.connId);
        if (!cptr)
            continue;
        const Conn &conn = *cptr;
        if (conn.out.srcPort != parsed.flow.dstPort ||
            conn.out.dstPort != parsed.flow.srcPort)
            continue;
        const std::uint32_t rel = parsed.flow.seq - op.startSeq;
        if (rel >= op.len)
            continue; // belongs to a later op on the same flow

        const Tick parse_cost = timing.cycles(timing.pktGatherCycles);
        const Tick copy_cost = static_cast<Tick>(
            static_cast<double>(parsed.payloadLen) /
            (timing.dramGBps * 1e9) * 1e12);
        const std::uint64_t dst = op.dstDramOff + rel;
        engine.dram().adopt(
            dst, frame.slice(parsed.payloadOffset, parsed.payloadLen));
        op.received += parsed.payloadLen;

        if (op.received >= op.len) {
            const std::uint32_t entry_id = op.entryId;
            const std::uint64_t tflow = op.traceFlow;
            const Tick issued_at = op.issuedAt;
            gathers.erase(it);
            engine.schedule(parse_cost + copy_cost,
                            [this, entry_id, tflow, issued_at] {
                                TRACE_SPAN(engine.tracer(), issued_at,
                                           engine.now() - issued_at, track,
                                           "gather", tflow);
                                if (onComplete)
                                    onComplete(entry_id);
                            });
        }
        return true;
    }
    return false;
}

void
HdcNicController::gatherFrame(BufChain frame)
{
    // Per-frame parse + header strip, then a DRAM-to-DRAM placement at
    // on-board memory bandwidth.
    auto parsed = net::parseFrame(frame);
    if (!parsed) {
        warn("hdc.nic: unparseable frame dropped");
        return;
    }
    ++gathered;
    if (tryGather(*parsed, frame))
        return;

    // No command has claimed this flow range yet: the frame stays in
    // the on-board receive buffers until one does.
    if (unclaimedFrames.size() >= maxUnclaimed) {
        warn("hdc.nic[%s]: receive buffers exhausted, dropping frame "
             "(seq %u)",
             engineName(), parsed->flow.seq);
        return;
    }
    unclaimedFrames.push_back(std::move(frame));
}

} // namespace hdc
} // namespace dcs
