#include "hdc/hdc_engine.hh"

#include <algorithm>
#include <cstring>

#include "nic/nic.hh"
#include "pcie/fabric.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdc {

HdcEngine::HdcEngine(EventQueue &eq, std::string name, Addr bar,
                     HdcEngineParams p)
    : pcie::Device(eq, std::move(name)), _bar(bar), _params(p),
      _bram(p.bramBytes, this->name() + ".bram"),
      // 4 KiB DRAM pages: SSD PRP scatter and NIC gather land
      // page-granular, so adopt() installs views instead of copying.
      _dram(p.dramBytes, this->name() + ".dram", 12),
      results(cmdQueueEntries * resultSlotSize, this->name() + ".results")
{
    // One BAR covering registers, command queue, result slots, BRAM
    // window and the DRAM window.
    claimRange({bar, dramOff + p.dramBytes});

    _scoreboard = std::make_unique<Scoreboard>(
        eq, this->name() + ".scoreboard", _params.timing);
    _nic = std::make_unique<HdcNicController>(*this, _params.timing);
    _ndp = std::make_unique<NdpPool>(*this, _params.timing,
                                     _params.ndpTargetGbps);

    _nic->onComplete = [this](std::uint32_t id) { entryCompleted(id, 0); };
    _ndp->onComplete = [this](std::uint32_t id, std::uint64_t out_len) {
        entryCompleted(id, out_len);
    };
    _scoreboard->setCommandDone(
        [this](std::uint32_t cmd_id) { commandFinished(cmd_id); });

    if (_params.maxLiveEntries)
        _scoreboard->setLiveBound(_params.maxLiveEntries);

    statsGroup().addCounter("commands_done", _cmdsDone,
                            "D2D commands completed");
    statsGroup().addCounter("irqs", _irqs, "completion MSIs raised");
    statsGroup().addCounter("cmd_rejects", _cmdRejects,
                            "D2D commands NACKed at admission");
    statsGroup().addValue(
        "doorbell_writes",
        [this] { return static_cast<double>(doorbellWrites()); },
        "P2P doorbell MMIO writes by the device controllers");
    // Zero-copy data-plane accounting for the on-board DDR3: how many
    // payload bytes were memcpy'd versus moved as borrowed/adopted
    // views, and the discrete copy operations — the O(1)
    // copies-per-request evidence for the D2D path.
    statsGroup().addValue(
        "dram_copy_ops",
        [this] { return static_cast<double>(_dram.transfers().copyOps); },
        "discrete payload memcpy calls on engine DRAM");
    statsGroup().addValue(
        "dram_bytes_copied",
        [this] {
            return static_cast<double>(_dram.transfers().bytesCopied);
        },
        "payload bytes memcpy'd in/out of engine DRAM");
    statsGroup().addValue(
        "dram_bytes_borrowed",
        [this] {
            return static_cast<double>(_dram.transfers().bytesBorrowed);
        },
        "payload bytes read zero-copy as views");
    statsGroup().addValue(
        "dram_bytes_adopted",
        [this] {
            return static_cast<double>(_dram.transfers().bytesAdopted);
        },
        "payload bytes written zero-copy as views");
    // Buffer-allocator stats (bufAlloc exists after configureDevices;
    // zero before that).
    statsGroup().addValue(
        "buf_chunks_used",
        [this] {
            return bufAlloc
                       ? static_cast<double>(bufAlloc->usedChunks())
                       : 0.0;
        },
        "live DRAM buffer chunks");
    statsGroup().addValue(
        "buf_chunks_peak",
        [this] {
            return bufAlloc ? static_cast<double>(bufAlloc->peakUsed())
                            : 0.0;
        },
        "high-water mark of live DRAM buffer chunks");
    statsGroup().addValue(
        "buf_chunks_total",
        [this] {
            return bufAlloc
                       ? static_cast<double>(bufAlloc->totalChunks())
                       : 0.0;
        },
        "DRAM buffer chunk capacity");
}

void
HdcEngine::configureDevices(const HdcDeviceConfig &cfg)
{
    devCfg = cfg;

    // Lay out BRAM: NVMe queue pair + PRP arena, then NIC rings.
    std::uint64_t off = 0;
    auto take = [&](std::uint64_t n) {
        const std::uint64_t at = off;
        off = (off + n + 63) & ~63ull;
        if (off > _params.bramBytes)
            fatal("%s: BRAM exhausted", name().c_str());
        return at;
    };
    // One controller + queue pair per bound SSD: adding a device
    // costs one more disaggregate controller, not a redesign.
    std::vector<SsdBinding> ssds;
    ssds.push_back({cfg.ssdBar0, cfg.ssdQid, cfg.ssdQdepth});
    for (const auto &b : cfg.extraSsds)
        ssds.push_back(b);
    // PRP slots must hold one entry per 4 KiB page of a chunk.
    const std::uint64_t prp_slot =
        ((_params.chunkSize / 4096) * 8 + 63) & ~63ull;
    bramNvme.clear();
    for (const auto &b : ssds) {
        NvmeBramLayout l;
        l.sq = take(std::uint64_t(b.qdepth) * 64);
        l.cq = take(std::uint64_t(b.qdepth) * 16);
        l.prp = take(std::uint64_t(b.qdepth) * prp_slot);
        bramNvme.push_back(l);
    }
    bramNicSend =
        take(std::uint64_t(cfg.nicRingEntries) * sizeof(nic::SendDesc));
    bramNicSendCpl =
        take(std::uint64_t(cfg.nicRingEntries) * sizeof(nic::CplEntry));
    bramNicRecv =
        take(std::uint64_t(cfg.nicRingEntries) * sizeof(nic::RecvDesc));
    bramNicRecvCpl =
        take(std::uint64_t(cfg.nicRingEntries) * sizeof(nic::CplEntry));
    bramNicHdr = take(std::uint64_t(cfg.nicRingEntries) * 64);

    // DRAM: receive-frame arena at the bottom, 64 KiB intermediate
    // buffers above it.
    dramRecvArena = 0;
    const std::uint64_t arena_bytes =
        std::uint64_t(_params.recvArenaFrames) * _params.recvBufSize;
    const std::uint64_t buf_base =
        (arena_bytes + _params.chunkSize - 1) & ~(_params.chunkSize - 1);
    bufAlloc = std::make_unique<ChunkAllocator>(
        AddrRange{buf_base, _params.dramBytes - buf_base},
        _params.chunkSize);

    _nvme.clear();
    int total_ssd_slots = 0;
    for (std::size_t i = 0; i < ssds.size(); ++i) {
        auto ctrl =
            std::make_unique<HdcNvmeController>(*this, _params.timing);
        ctrl->configure(ssds[i].bar0, ssds[i].qid, ssds[i].qdepth,
                        bramNvme[i].sq, bramNvme[i].cq, bramNvme[i].prp,
                        prp_slot);
        ctrl->onComplete = [this](std::uint32_t id) {
            entryCompleted(id, 0);
        };
        total_ssd_slots += std::max<int>(1, ssds[i].qdepth - 2);
        _nvme.push_back(std::move(ctrl));
    }
    _nic->configure(cfg.nicBar0, cfg.nicRingEntries, bramNicSend,
                    bramNicSendCpl, bramNicRecv, bramNicRecvCpl,
                    bramNicHdr, dramRecvArena, _params.recvBufSize,
                    cfg.mss);

    _scoreboard->registerController(
        DevClass::SsdCtrl,
        [this](const Entry &e) {
            // Entry::aux carries the SSD index for storage commands.
            _nvme.at(static_cast<std::size_t>(e.aux))->issue(e);
        },
        total_ssd_slots);
    _scoreboard->registerController(
        DevClass::NicCtrl,
        [this](const Entry &e) { _nic->issueSend(e); },
        std::max<int>(1, static_cast<int>(cfg.nicRingEntries) - 2));
    _scoreboard->registerController(
        DevClass::NdpUnit, [this](const Entry &e) { _ndp->issue(e); }, 64);
    _scoreboard->registerController(
        DevClass::Gather,
        [this](const Entry &e) { _nic->issueGather(e); }, 4096);

    devicesConfigured = true;
}

void
HdcEngine::startNicRx()
{
    _nic->startRx();
}

void
HdcEngine::registerConnection(std::uint32_t conn_id, net::FlowInfo out,
                              std::uint32_t next_rx_seq)
{
    _nic->registerConnection(conn_id, out, next_rx_seq);
}

Addr
HdcEngine::nvmeSqBus(std::size_t ssd_idx) const
{
    return bramBus(bramNvme.at(ssd_idx).sq);
}

Addr
HdcEngine::nvmeCqBus(std::size_t ssd_idx) const
{
    return bramBus(bramNvme.at(ssd_idx).cq);
}

Addr
HdcEngine::nicSendRingBus() const
{
    return bramBus(bramNicSend);
}

Addr
HdcEngine::nicSendCplBus() const
{
    return bramBus(bramNicSendCpl);
}

Addr
HdcEngine::nicRecvRingBus() const
{
    return bramBus(bramNicRecv);
}

Addr
HdcEngine::nicRecvCplBus() const
{
    return bramBus(bramNicRecvCpl);
}

Addr
HdcEngine::cmdSlotBus(std::uint32_t idx) const
{
    return _bar + cmdQueueOff + (idx % cmdQueueEntries) * sizeof(D2dCommand);
}

Addr
HdcEngine::resultSlotBus(std::uint32_t cmd_id) const
{
    return _bar + resultOff + (cmd_id % cmdQueueEntries) * resultSlotSize;
}

void
HdcEngine::engDmaRead(Addr a, std::uint64_t n,
                      std::function<void(BufChain)> done)
{
    dmaRead(a, n, std::move(done));
}

void
HdcEngine::engDmaWrite(Addr a, BufChain d, std::function<void()> done)
{
    dmaWrite(a, std::move(d), std::move(done));
}

void
HdcEngine::engMmioWrite(Addr a, std::uint64_t v, unsigned size)
{
    mmioWrite(a, v, size);
}

void
HdcEngine::busWriteBulk(Addr addr, const BufChain &data)
{
    const std::uint64_t off = addr - _bar;
    if (off >= dramOff) {
        _dram.adopt(off - dramOff, data);
        return;
    }
    // Registers, command queue and BRAM keep the contiguous delivery
    // (controllers react to whole-write extents there).
    pcie::Device::busWriteBulk(addr, data);
}

BufChain
HdcEngine::busReadBulk(Addr addr, std::uint64_t len)
{
    const std::uint64_t off = addr - _bar;
    if (off >= dramOff)
        return _dram.borrow(off - dramOff, len);
    return pcie::Device::busReadBulk(addr, len);
}

void
HdcEngine::busWrite(Addr addr, std::span<const std::uint8_t> data)
{
    const std::uint64_t off = addr - _bar;

    if (off >= dramOff) {
        _dram.write(off - dramOff, data.data(), data.size());
        return;
    }
    if (off >= bramOff && off < bramOff + _params.bramBytes) {
        const std::uint64_t boff = off - bramOff;
        _bram.write(boff, data.data(), data.size());
        // Completion rings live here: let the controllers react.
        for (auto &ctrl : _nvme)
            ctrl->onBramWrite(boff, data.size());
        _nic->onBramWrite(boff, data.size());
        return;
    }
    if (off >= cmdQueueOff &&
        off < cmdQueueOff + cmdQueueEntries * sizeof(D2dCommand)) {
        // Host writes D2D commands directly into queue slots.
        const std::uint64_t qoff = off - cmdQueueOff;
        if (qoff + data.size() > cmdQueueEntries * sizeof(D2dCommand))
            panic("%s: command write overruns queue", name().c_str());
        std::memcpy(cmdqRaw.data() + qoff, data.data(), data.size());
        return;
    }
    if (off == regDoorbell) {
        std::uint32_t v = 0;
        std::memcpy(&v, data.data(), std::min<std::size_t>(4, data.size()));
        cmdTail = v;
        pumpCmdQueue();
        return;
    }
    panic("%s: write to unmapped engine offset 0x%llx", name().c_str(),
          (unsigned long long)off);
}

void
HdcEngine::busRead(Addr addr, std::span<std::uint8_t> data)
{
    const std::uint64_t off = addr - _bar;
    if (off >= dramOff) {
        _dram.read(off - dramOff, data.data(), data.size());
        return;
    }
    if (off >= bramOff && off < bramOff + _params.bramBytes) {
        _bram.read(off - bramOff, data.data(), data.size());
        return;
    }
    if (off >= resultOff &&
        off < resultOff + cmdQueueEntries * resultSlotSize) {
        results.read(off - resultOff, data.data(), data.size());
        return;
    }
    if (off >= cplRingOff && off < cplRingOff + cplRingRaw.size()) {
        const std::uint64_t roff = off - cplRingOff;
        const std::size_t n =
            std::min<std::size_t>(data.size(), cplRingRaw.size() - roff);
        std::memcpy(data.data(), cplRingRaw.data() + roff, n);
        return;
    }
    if (off == regDoorbell) {
        std::memcpy(data.data(), &cmdTail,
                    std::min<std::size_t>(4, data.size()));
        return;
    }
    panic("%s: read from unmapped engine offset 0x%llx", name().c_str(),
          (unsigned long long)off);
}

void
HdcEngine::pumpCmdQueue()
{
    if (parserBusy || cmdParsed == cmdTail)
        return;
    if (!devicesConfigured)
        panic("%s: command before configureDevices", name().c_str());
    parserBusy = true;
    const Tick parse_cost = _params.timing.cycles(_params.timing.cmdParseCycles);
    schedule(parse_cost, [this, parse_cost] {
        D2dCommand cmd;
        std::memcpy(&cmd,
                    cmdqRaw.data() + (cmdParsed % cmdQueueEntries) *
                                         sizeof(D2dCommand),
                    sizeof(cmd));
        ++cmdParsed;
        TRACE_SPAN_LANE(tracer(), now() - parse_cost, parse_cost, name(),
                        "parse",
                        tracer().flowOf(trace::key(name(), cmd.id)));
        processCommand(cmd);
        parserBusy = false;
        pumpCmdQueue();
    });
}

bool
HdcEngine::admitCommand(const D2dCommand &cmd) const
{
    if (_params.maxActiveCmds && activeCount >= _params.maxActiveCmds)
        return false;
    // Worst-case entry estimate: per chunk, one SSD run per 4 KiB
    // page on each side plus an NDP stage and a send. Deliberately
    // conservative — admission must never let addEntry trip the
    // scoreboard's live bound.
    const std::uint64_t chunk = _params.chunkSize;
    const std::uint64_t len = std::max<std::uint64_t>(cmd.len, 1);
    const std::uint64_t nchunks = (len + chunk - 1) / chunk;
    const std::uint64_t per_chunk = 2 * (chunk / 4096) + 2;
    return _scoreboard->hasCapacity(nchunks * per_chunk);
}

HdcEngine::CmdRecord *
HdcEngine::findActive(std::uint32_t cmd_id)
{
    CmdRecord &rec = cmdPool[cmd_id % cmdQueueEntries];
    return (rec.inUse && rec.cmd.id == cmd_id) ? &rec : nullptr;
}

const HdcEngine::CmdRecord *
HdcEngine::findActive(std::uint32_t cmd_id) const
{
    return const_cast<HdcEngine *>(this)->findActive(cmd_id);
}

HdcEngine::CmdRecord &
HdcEngine::requireActive(std::uint32_t cmd_id, const char *what)
{
    CmdRecord *rec = findActive(cmd_id);
    if (!rec)
        panic("%s: %s for unknown command %u", name().c_str(), what,
              cmd_id);
    return *rec;
}

HdcEngine::CmdRecord &
HdcEngine::claimRecord(const D2dCommand &cmd)
{
    CmdRecord &rec = cmdPool[cmd.id % cmdQueueEntries];
    if (rec.inUse)
        panic("%s: command pool slot collision: %u vs live %u",
              name().c_str(), cmd.id, rec.cmd.id);
    rec.cmd = cmd;
    rec.srcExt.clear();
    rec.dstExt.clear();
    rec.aux.clear();
    rec.inUse = true;
    rec.done = false;
    rec.ownedChunks.clear();
    rec.flow = 0;
    rec.lenInherit.clear();
    rec.freeOnComplete.clear();
    ++activeCount;
    return rec;
}

void
HdcEngine::releaseRecord(CmdRecord &rec)
{
    DCS_INVARIANT(rec.inUse, "releasing a free command record");
    rec.inUse = false;
    DCS_CHECK_GT(activeCount, std::size_t{0},
                 "command pool underflow");
    --activeCount;
}

void
HdcEngine::processCommand(const D2dCommand &cmd)
{
    if (findActive(cmd.id))
        panic("%s: duplicate D2D command id %u", name().c_str(), cmd.id);
    if (!admitCommand(cmd)) {
        // 429: the command never enters the active set or the
        // in-order completion queue — a NACK is not a completion, so
        // it cannot head-of-line-block admitted commands.
        ++_cmdRejects;
        _scoreboard->noteReject();
        const std::uint64_t rflow =
            tracer().flowOf(trace::key(name(), cmd.id));
        TRACE_FLOW(tracer(), now(), name(), "admission_reject", rflow);
        schedule(_params.timing.cycles(_params.timing.irqGenCycles),
                 [this, id = cmd.id, rflow] {
                     notifyCompletion(id, rflow, true);
                 });
        return;
    }
    CmdRecord &ac = claimRecord(cmd);
    // Recover the request's flow id from the driver-side binding (the
    // 64-byte wire command cannot carry it) and open the command's
    // lifetime span: parse done -> in-order retirement.
    ac.flow = tracer().flowOf(trace::key(name(), cmd.id));
    TRACE_SPAN_BEGIN(tracer(), now(), name(), "cmd", cmd.id, ac.flow);
    completionOrder.push_back(cmd.id);

    const std::uint32_t n_ext = cmd.srcExtents + cmd.dstExtents;
    auto after_ext = [this, id = cmd.id] {
        CmdRecord &a = requireActive(id, "extent continuation");
        if (a.cmd.auxLen > 0) {
            engDmaRead(a.cmd.auxAddr, a.cmd.auxLen,
                       [this, id](BufChain aux) {
                           CmdRecord &a2 =
                               requireActive(id, "aux continuation");
                           a2.aux.resize(aux.size());
                           aux.copyOut(a2.aux.data());
                           buildPipeline(a2);
                       });
        } else {
            buildPipeline(a);
        }
    };

    if (n_ext > 0) {
        engDmaRead(cmd.extListAddr, std::uint64_t(n_ext) * sizeof(ExtentRec),
                   [this, id = cmd.id, after_ext](BufChain chain) {
                       CmdRecord &a =
                           requireActive(id, "extent continuation");
                       const std::size_t src_bytes =
                           std::size_t(a.cmd.srcExtents) *
                           sizeof(ExtentRec);
                       const std::size_t dst_bytes =
                           std::size_t(a.cmd.dstExtents) *
                           sizeof(ExtentRec);
                       a.srcExt.resize(a.cmd.srcExtents);
                       a.dstExt.resize(a.cmd.dstExtents);
                       chain.copyOut(0, a.srcExt.data(), src_bytes);
                       chain.copyOut(src_bytes, a.dstExt.data(),
                                     dst_bytes);
                       after_ext();
                   });
    } else {
        // Contiguous shorthand: srcAddr/dstAddr carry the single run.
        if (static_cast<Endpoint>(cmd.srcDev) == Endpoint::Ssd)
            ac.srcExt.push_back(
                {cmd.srcAddr, (cmd.len + 4095) / 4096});
        if (static_cast<Endpoint>(cmd.dstDev) == Endpoint::Ssd)
            ac.dstExt.push_back(
                {cmd.dstAddr, (cmd.len + 4095) / 4096});
        after_ext();
    }
}

void
HdcEngine::extentRuns(const ExtentRec *ext, std::size_t n_ext,
                      std::uint64_t off, std::uint64_t len, RunVec &out)
{
    constexpr std::uint64_t bs = 4096;
    std::uint64_t skip = off / bs;
    std::uint64_t need = len;
    for (std::size_t i = 0; i < n_ext; ++i) {
        const ExtentRec &e = ext[i];
        if (need == 0)
            break;
        if (skip >= e.blocks) {
            skip -= e.blocks;
            continue;
        }
        const std::uint64_t avail_bytes = (e.blocks - skip) * bs;
        const std::uint64_t take = std::min(avail_bytes, need);
        out.push_back({e.lba + skip, take});
        skip = 0;
        need -= take;
    }
    if (need != 0)
        panic("hdc: extent list shorter than command length");
}

void
HdcEngine::buildPipeline(CmdRecord &ac)
{
    const D2dCommand &cmd = ac.cmd;
    const std::uint64_t flow = ac.flow;
    const auto src = static_cast<Endpoint>(cmd.srcDev);
    const auto dst = static_cast<Endpoint>(cmd.dstDev);
    const auto fn = static_cast<ndp::Function>(cmd.fn);
    const bool passthru = ndp::isPassThrough(fn);
    const std::uint64_t chunk = _params.chunkSize;

    if (cmd.len == 0)
        panic("%s: zero-length D2D command", name().c_str());
    if (src == Endpoint::HdcBuffer && dst == Endpoint::HdcBuffer &&
        fn == ndp::Function::None)
        panic("%s: degenerate buffer-to-buffer copy", name().c_str());
    if ((fn == ndp::Function::Gzip || fn == ndp::Function::Gunzip) &&
        dst == Endpoint::Ssd)
        panic("%s: variable-length output to SSD is not supported",
              name().c_str());

    if (fn != ndp::Function::None)
        _ndp->beginCommand(cmd.id, fn,
                           {ac.aux.data(), ac.aux.size()},
                           (cmd.id % cmdQueueEntries) * resultSlotSize);

    std::uint32_t base_seq = 0;
    if (src == Endpoint::Nic)
        base_seq = _nic->reserveRxRange(
            static_cast<std::uint32_t>(cmd.srcAddr), cmd.len);

    const std::uint64_t nchunks = (cmd.len + chunk - 1) / chunk;
    std::uint32_t prev_ndp = 0;
    std::uint32_t prev_send = 0;
    std::uint32_t entry_count = 0;

    // TCP is a byte stream: sends on one connection must issue in
    // command order even across D2D commands, or the engine would
    // interleave two commands' payloads within the stream.
    if (dst == Endpoint::Nic) {
        const auto conn = static_cast<std::uint32_t>(cmd.dstAddr);
        const std::uint32_t *last = lastSendOnConn.find(conn);
        // Stale handles are expected: the previous command may have
        // retired long ago. The generation check in hasEntry makes a
        // recycled slot indistinguishable from "no predecessor".
        if (last && _scoreboard->hasEntry(*last))
            prev_send = *last;
    }

    auto alloc_chunk = [this, &ac]() -> std::uint64_t {
        auto a = bufAlloc->alloc();
        if (!a)
            fatal("%s: intermediate buffers exhausted", name().c_str());
        ac.ownedChunks.push_back(*a); // safety net freed at retire
        return *a;
    };

    SmallVec<std::uint32_t, 16> src_ids;
    RunVec runs;
    for (std::uint64_t i = 0; i < nchunks; ++i) {
        const std::uint64_t off = i * chunk;
        const std::uint64_t clen = std::min(chunk, cmd.len - off);
        std::array<std::uint64_t, 2> owned{};
        std::size_t n_owned = 0;

        // Input location in on-board DRAM.
        std::uint64_t loc_in;
        if (src == Endpoint::HdcBuffer) {
            loc_in = cmd.srcAddr + off;
        } else if (dst == Endpoint::HdcBuffer && passthru) {
            loc_in = cmd.dstAddr + off;
        } else {
            loc_in = alloc_chunk();
            owned[n_owned++] = loc_in;
        }

        // Output location.
        std::uint64_t loc_out;
        if (passthru) {
            loc_out = loc_in;
        } else if (dst == Endpoint::HdcBuffer) {
            loc_out = cmd.dstAddr + off;
        } else {
            loc_out = alloc_chunk();
            owned[n_owned++] = loc_out;
        }

        // --- Source device commands.
        src_ids.clear();
        if (src == Endpoint::Ssd) {
            std::uint64_t run_off = 0;
            runs.clear();
            extentRuns(ac.srcExt.data(), ac.srcExt.size(), off, clen,
                       runs);
            for (const Run &r : runs) {
                Entry e;
                e.cmdId = cmd.id;
                e.flow = flow;
                e.dev = DevClass::SsdCtrl;
                e.write = false;
                e.src = r.addr;
                e.dst = loc_in + run_off;
                e.len = r.len;
                e.aux = cmd.srcDevIdx;
                src_ids.push_back(_scoreboard->addEntry(e));
                run_off += r.len;
            }
        } else if (src == Endpoint::Nic) {
            Entry e;
            e.cmdId = cmd.id;
            e.flow = flow;
            e.dev = DevClass::Gather;
            e.src = base_seq + off;
            e.dst = loc_in;
            e.len = clen;
            e.aux = cmd.srcAddr; // connection id
            src_ids.push_back(_scoreboard->addEntry(e));
        }

        // --- NDP stage.
        std::uint32_t ndp_id = 0;
        if (fn != ndp::Function::None) {
            Entry e;
            e.cmdId = cmd.id;
            e.flow = flow;
            e.dev = DevClass::NdpUnit;
            e.src = loc_in;
            e.dst = loc_out;
            e.len = clen;
            e.fn = fn;
            e.aux = NdpAux{off, i == nchunks - 1}.pack();
            ndp_id = _scoreboard->addEntry(e);
            for (std::uint32_t s : src_ids)
                _scoreboard->addDependency(s, ndp_id);
            if (prev_ndp)
                _scoreboard->addDependency(prev_ndp, ndp_id);
            prev_ndp = ndp_id;
        }

        const std::uint32_t *data_ready =
            ndp_id ? &ndp_id : src_ids.data();
        const std::size_t n_ready = ndp_id ? 1 : src_ids.size();

        // --- Destination device commands.
        std::uint32_t last_op = ndp_id ? ndp_id
                                : (src_ids.empty() ? 0 : src_ids.back());
        std::uint32_t dst_entries = 0;
        if (dst == Endpoint::Nic) {
            Entry e;
            e.cmdId = cmd.id;
            e.flow = flow;
            e.dev = DevClass::NicCtrl;
            e.src = loc_out;
            e.len = clen;
            e.aux = cmd.dstAddr; // connection id
            const std::uint32_t send_id = _scoreboard->addEntry(e);
            for (std::size_t k = 0; k < n_ready; ++k)
                _scoreboard->addDependency(data_ready[k], send_id);
            if (prev_send)
                _scoreboard->addDependency(prev_send, send_id);
            prev_send = send_id;
            lastSendOnConn[static_cast<std::uint32_t>(cmd.dstAddr)] =
                send_id;
            last_op = send_id;
            dst_entries = 1;
            if (ndp_id &&
                (fn == ndp::Function::Gzip || fn == ndp::Function::Gunzip))
                ac.lenInherit.push_back({ndp_id, send_id});
        } else if (dst == Endpoint::Ssd) {
            std::uint64_t run_off = 0;
            runs.clear();
            extentRuns(ac.dstExt.data(), ac.dstExt.size(), off, clen,
                       runs);
            for (const Run &r : runs) {
                Entry e;
                e.cmdId = cmd.id;
                e.flow = flow;
                e.dev = DevClass::SsdCtrl;
                e.write = true;
                e.src = loc_out + run_off;
                e.dst = r.addr;
                e.len = r.len;
                e.aux = cmd.dstDevIdx;
                const std::uint32_t wid = _scoreboard->addEntry(e);
                for (std::size_t k = 0; k < n_ready; ++k)
                    _scoreboard->addDependency(data_ready[k], wid);
                last_op = wid;
                run_off += r.len;
                ++dst_entries;
            }
        }

        if (last_op == 0)
            panic("%s: pipeline chunk with no operations", name().c_str());
        for (std::size_t k = 0; k < n_owned; ++k) {
            // Ownership transferred to the completion hook.
            ac.freeOnComplete.push_back({last_op, owned[k]});
            ac.ownedChunks.eraseValue(owned[k]);
        }
        entry_count += static_cast<std::uint32_t>(src_ids.size()) +
                       (ndp_id ? 1 : 0) + dst_entries;
    }

    _scoreboard->declareCommand(cmd.id, entry_count);
    _scoreboard->arm();
}

void
HdcEngine::entryCompleted(std::uint32_t entry_id, std::uint64_t out_len)
{
    // The entry is still live (complete() retires it below), so its
    // owning command record is reachable through the scoreboard.
    CmdRecord &rec =
        requireActive(_scoreboard->cmdOf(entry_id), "entry completion");
    if (out_len > 0 && !rec.lenInherit.empty()) {
        std::size_t out = 0;
        for (std::size_t i = 0; i < rec.lenInherit.size(); ++i) {
            const LenInheritRec &li = rec.lenInherit[i];
            if (li.ndpEntry == entry_id)
                _scoreboard->setEntryLen(li.sendEntry, out_len);
            else
                rec.lenInherit[out++] = li;
        }
        rec.lenInherit.resize(out);
    }
    if (!rec.freeOnComplete.empty()) {
        std::size_t out = 0;
        for (std::size_t i = 0; i < rec.freeOnComplete.size(); ++i) {
            const FreeRec &fr = rec.freeOnComplete[i];
            if (fr.entry == entry_id)
                bufAlloc->free(fr.chunk);
            else
                rec.freeOnComplete[out++] = fr;
        }
        rec.freeOnComplete.resize(out);
    }
    _scoreboard->complete(entry_id);
}

void
HdcEngine::writeResult(std::uint32_t cmd_id,
                       std::span<const std::uint8_t> digest)
{
    const std::uint64_t slot = (cmd_id % cmdQueueEntries) * resultSlotSize;
    const std::uint32_t status = 1;
    const auto len = static_cast<std::uint32_t>(digest.size());
    results.write(slot, &status, 4);
    results.write(slot + 4, &len, 4);
    if (!digest.empty())
        results.write(slot + 8, digest.data(),
                      std::min<std::size_t>(digest.size(),
                                            resultSlotSize - 8));
}

void
HdcEngine::commandFinished(std::uint32_t cmd_id)
{
    CmdRecord &rec = requireActive(cmd_id, "finish");
    rec.done = true;
    drainCompletions();
}

void
HdcEngine::drainCompletions()
{
    // Completions are reported to the driver in request order
    // (paper §IV-C: "issues D2D commands in a requested order and
    // notifies HDC Driver of their completions in the same order").
    // With inOrderCompletion disabled, any finished command may be
    // retired (ablation of the head-of-line blocking).
    while (!completionOrder.empty()) {
        std::size_t pick = 0;
        if (!devCfg.inOrderCompletion) {
            std::size_t i = 0;
            for (; i < completionOrder.size(); ++i) {
                const CmdRecord *r = findActive(completionOrder[i]);
                if (r && r->done)
                    break;
            }
            if (i == completionOrder.size())
                break;
            pick = i;
        }
        const std::uint32_t front = completionOrder[pick];
        CmdRecord *rec = findActive(front);
        if (!rec)
            panic("%s: completion order references unknown cmd",
                  name().c_str());
        if (!rec->done)
            break;
        completionOrder.erase(pick);

        const std::uint64_t flow = rec->flow;
        TRACE_SPAN_END(tracer(), now(), name(), "cmd", front);

        // Release any safety-net buffers still owned by the command.
        for (std::uint64_t off : rec->ownedChunks)
            bufAlloc->free(off);
        if (static_cast<ndp::Function>(rec->cmd.fn) !=
            ndp::Function::None)
            _ndp->endCommand(front);
        releaseRecord(*rec);
        ++_cmdsDone;

        schedule(_params.timing.cycles(_params.timing.irqGenCycles),
                 [this, front, flow] {
                     notifyCompletion(front, flow, false);
                 });
    }
}

void
HdcEngine::notifyCompletion(std::uint32_t cmd_id, std::uint64_t flow,
                            bool rejected)
{
    const std::uint32_t value = rejected ? (cplNackBit | cmd_id) : cmd_id;
    if (_params.msiCoalesce == 0) {
        // Legacy per-completion interrupt, preserved bit-for-bit.
        ++_irqs;
        if (msiAddr == 0)
            panic("%s: completion with no MSI target", name().c_str());
        TRACE_FLOW(tracer(), now(), name(), "msi_raised", flow);
        engMmioWrite(msiAddr, value, 4);
        return;
    }
    // Coalesced: park the id in the BAR completion ring; one MSI
    // covers every pending entry once the window fills or the holdoff
    // expires. The driver's outstanding-command cap (< ring size)
    // bounds undelivered entries, so the ring cannot overrun.
    std::memcpy(cplRingRaw.data() +
                    (cplProduced % cmdQueueEntries) * 4,
                &value, 4);
    ++cplProduced;
    ++cplPending;
    TRACE_FLOW(tracer(), now(), name(), "cpl_queued", flow);
    if (cplPending >= _params.msiCoalesce) {
        flushMsi();
        return;
    }
    if (!msiTimerArmed) {
        msiTimerArmed = true;
        schedule(_params.msiHoldoff, [this] {
            msiTimerArmed = false;
            // May fire with nothing pending (a threshold flush beat
            // it): stay silent rather than raise an empty interrupt.
            flushMsi();
        });
    }
}

void
HdcEngine::flushMsi()
{
    if (cplPending == 0)
        return;
    cplPending = 0;
    ++_irqs;
    if (msiAddr == 0)
        panic("%s: completion with no MSI target", name().c_str());
    TRACE_FLOW(tracer(), now(), name(), "msi_raised", 0);
    engMmioWrite(msiAddr, cplProduced, 4);
}

bool
HdcEngine::quiescent() const
{
    bool idle = activeCount == 0 && completionOrder.empty() &&
                _scoreboard->quiescent();
    if (_ndp)
        idle = idle && _ndp->activeStreams() == 0;
    for (const auto &ctrl : _nvme)
        idle = idle && ctrl->inflightCount() == 0 &&
               ctrl->backlogDepth() == 0;
    if (_nic)
        idle = idle && _nic->sendsInflight() == 0;
    if (bufAlloc)
        idle = idle && bufAlloc->usedChunks() == 0;
    return idle;
}

bool
HdcEngine::checkQuiesce() const
{
    DCS_CHECK_EQ(activeCount, std::size_t{0},
                 "command-pool slots leaked at quiesce");
    DCS_CHECK_EQ(completionOrder.size(), std::size_t{0},
                 "in-order completion queue not drained at quiesce");
    _scoreboard->checkQuiesce();
    if (_ndp)
        DCS_CHECK_EQ(_ndp->activeStreams(), std::size_t{0},
                     "NDP streams leaked at quiesce");
    for (const auto &ctrl : _nvme) {
        DCS_CHECK_EQ(ctrl->inflightCount(), std::size_t{0},
                     "NVMe commands inflight at quiesce");
        DCS_CHECK_EQ(ctrl->backlogDepth(), std::size_t{0},
                     "NVMe backlog not drained at quiesce");
    }
    if (_nic)
        DCS_CHECK_EQ(_nic->sendsInflight(), std::size_t{0},
                     "NIC sends inflight at quiesce");
    if (bufAlloc)
        DCS_CHECK_EQ(bufAlloc->usedChunks(), std::size_t{0},
                     "DRAM buffer chunks leaked at quiesce");
    return quiescent();
}

std::uint64_t
HdcEngine::doorbellWrites() const
{
    std::uint64_t n = 0;
    for (const auto &ctrl : _nvme)
        n += ctrl->doorbellWrites();
    if (_nic)
        n += _nic->doorbellWrites();
    return n;
}

} // namespace hdc
} // namespace dcs
