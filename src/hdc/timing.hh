/**
 * @file
 * HDC Engine FPGA timing model.
 *
 * The prototype runs on a Xilinx Virtex-7 VC707. Control-path actions
 * are charged in fabric-clock cycles (the paper's controllers close
 * timing at 250 MHz); data touching the on-board DDR3 or BRAM is
 * charged at the respective memory bandwidth. NDP per-unit
 * throughputs are taken directly from paper Table III.
 */

#ifndef DCS_HDC_TIMING_HH
#define DCS_HDC_TIMING_HH

#include "ndp/transform.hh"
#include "sim/ticks.hh"

namespace dcs {
namespace hdc {

/** FPGA-side timing knobs. */
struct HdcTiming
{
    double clockMhz = 250.0;

    /** Fetch + parse one 64-byte D2D command from the command queue. */
    std::uint64_t cmdParseCycles = 64;

    /** Scoreboard: evaluate dependencies + issue one device command. */
    std::uint64_t scoreboardIssueCycles = 32;

    /** Scoreboard: mark a completion and wake dependents. */
    std::uint64_t scoreboardCompleteCycles = 16;

    /** NVMe controller: build SQE + write it to BRAM. */
    std::uint64_t nvmeCmdBuildCycles = 96;

    /** NVMe controller: consume one CQE. */
    std::uint64_t nvmeCplCycles = 48;

    /** NIC controller: generate headers + descriptor. */
    std::uint64_t nicCmdBuildCycles = 128;

    /** NIC controller: consume one send completion. */
    std::uint64_t nicCplCycles = 48;

    /** Packet gather: per-frame parse/steer logic. */
    std::uint64_t pktGatherCycles = 64;

    /** On-board DDR3 bandwidth (GB/s) for gather copies. */
    double dramGBps = 12.8;

    /** Interrupt generator: raise one MSI. */
    std::uint64_t irqGenCycles = 32;

    Tick
    cycles(std::uint64_t n) const
    {
        return cyclesAt(n, clockMhz);
    }
};

/** One NDP IP core's figures (paper Table III). */
struct NdpUnitSpec
{
    ndp::Function fn;
    double lutPct;        //!< Virtex-7 slice-LUT share per 10 Gbps
    double regPct;        //!< slice-register share per 10 Gbps
    double maxClockMhz;   //!< post-timing-analysis clock
    double perUnitGbps;   //!< throughput of a single IP core
};

/** Table III rows. @return spec for @p fn. */
const NdpUnitSpec &ndpSpec(ndp::Function fn);

/** Units required for @p fn to reach @p target_gbps aggregate. */
int ndpUnitsFor(ndp::Function fn, double target_gbps = 10.0);

/** HDC Engine resource accounting (paper Table IV). */
struct ResourceReport
{
    std::uint64_t luts = 0;
    std::uint64_t regs = 0;
    std::uint64_t brams = 0;
    double watts = 0.0;
};

/** Virtex-7 (XC7VX485T on VC707) totals. */
constexpr std::uint64_t virtex7Luts = 303600;
constexpr std::uint64_t virtex7Regs = 607200;
constexpr std::uint64_t virtex7Brams = 1030;

/**
 * Resource usage of the base engine (PCIe/host interface, scoreboard,
 * NVMe + NIC controllers, buffers) — calibrated to Table IV.
 */
ResourceReport baseEngineResources();

/** Additional resources for an NDP function at 10 Gbps. */
ResourceReport ndpResources(ndp::Function fn, double target_gbps = 10.0);

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_TIMING_HH
