/**
 * @file
 * The HDC Engine scoreboard (paper §III-B, Fig. 6).
 *
 * The scoreboard splits each user-requested D2D command into device
 * commands, stores them as entries carrying (dev, r/w, src, dst, aux,
 * state), and dynamically schedules them: an entry moves
 * wait -> ready when its dependencies complete, ready -> issued when
 * its target controller accepts it, issued -> done at completion.
 * When every entry of a D2D command is done, the command's id is
 * handed to the completion path to interrupt HDC Driver.
 *
 * Storage model: entries live in a flat slot slab indexed by the low
 * bits of the entry id; freed slots are recycled through a freelist
 * and the id's high bits carry a per-slot generation, so a stale id
 * from a retired entry can never alias a later occupant of the same
 * slot. Per-class ready queues are intrusive doubly-linked lists
 * threaded through the slots and dependency fan-out lives in a pooled
 * edge list — dependency wake-up and class scheduling never hash and
 * never allocate once the slab has grown to its working set.
 */

#ifndef DCS_HDC_SCOREBOARD_HH
#define DCS_HDC_SCOREBOARD_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "hdc/timing.hh"
#include "ndp/transform.hh"
#include "sim/check.hh"
#include "sim/probe_map.hh"
#include "sim/sim_object.hh"

namespace dcs {
namespace hdc {

/** Which controller executes an entry. */
enum class DevClass : std::uint8_t
{
    SsdCtrl,
    NicCtrl,
    NdpUnit,
    Gather, //!< NIC receive-side packet gather (completion-driven)
};

/** Entry lifecycle (paper Fig. 6: wait / ready-issue / issue-done). */
enum class EntryState : std::uint8_t
{
    Wait,
    Ready,
    Issued,
    Done,
};

/** One scoreboard entry == one device command. */
struct Entry
{
    std::uint32_t id = 0;        //!< entry id (slot | generation handle)
    std::uint32_t cmdId = 0;     //!< owning D2D command
    DevClass dev{};
    bool write = false;          //!< r/w field
    std::uint64_t src = 0;       //!< device-specific source address
    std::uint64_t dst = 0;       //!< device-specific dest address
    std::uint64_t len = 0;
    std::uint64_t aux = 0;       //!< chunk index / seq offset / etc.
    std::uint64_t flow = 0;      //!< span-tracer request identity
    ndp::Function fn = ndp::Function::None;
    EntryState state = EntryState::Wait;

    std::uint32_t pendingDeps = 0;
};

/**
 * The scheduler. Controllers are registered as issue targets; the
 * scoreboard pushes ready entries to them subject to per-controller
 * occupancy limits, charging the FPGA cycle cost of every decision.
 */
class Scoreboard : public SimObject
{
  public:
    /** Issue callback: start executing @p e; call complete(e.id) later. */
    using IssueFn = std::function<void(const Entry &)>;

    /** Entry-id layout: low bits select the slab slot (+1 so id 0
     *  stays "none"), high bits carry the slot's generation. */
    static constexpr std::uint32_t kSlotBits = 18;
    static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
    static constexpr std::uint32_t kGenMask =
        (1u << (32 - kSlotBits)) - 1;

    Scoreboard(EventQueue &eq, std::string name, const HdcTiming &timing);

    /**
     * Register the controller for @p dev.
     * @param slots max concurrently issued entries (queue depth).
     */
    void registerController(DevClass dev, IssueFn issue, int slots);

    /** Create an entry; returns its id. Dependencies added before arm(). */
    std::uint32_t addEntry(Entry e);

    /** Declare that @p after cannot issue until @p before is done. */
    void addDependency(std::uint32_t before, std::uint32_t after);

    /**
     * Finish building a command's entries: evaluate initial readiness
     * and start issuing.
     */
    void arm();

    /** Controller callback: entry @p id finished executing. */
    void complete(std::uint32_t id);

    /**
     * Withdraw a not-yet-issued entry (admission rollback). Acts as an
     * instant completion without execution: dependents are woken, the
     * owning command's remaining-entry count drops, and the slot is
     * recycled. Only legal in Wait or Ready state.
     */
    void cancel(std::uint32_t id);

    /**
     * Update a not-yet-issued entry's length (dynamic length
     * propagation for compression outputs).
     */
    void setEntryLen(std::uint32_t id, std::uint64_t len);

    /** Install the watcher told when all entries of a cmd are done. */
    void setCommandDone(std::function<void(std::uint32_t cmd_id)> fn);

    /** Track how many entries a D2D command contributed. */
    void
    declareCommand(std::uint32_t cmd_id, std::uint32_t n_entries)
    {
        DCS_CHECK_GT(n_entries, 0u, "command declared with no entries");
        remainingPerCmd[cmd_id] = n_entries;
    }

    /** True while @p id exists (not yet retired). */
    bool hasEntry(std::uint32_t id) const { return lookup(id) != nullptr; }

    /** Owning D2D command of a live entry. */
    std::uint32_t
    cmdOf(std::uint32_t id) const
    {
        return require(id, "cmdOf").e.cmdId;
    }

    /** @name Admission control (finite queues under overload). */
    /** @{ */

    /**
     * Cap total live entries (0 = unbounded). Enforced as a
     * DCS_CHECKED invariant in addEntry: callers must consult
     * hasCapacity() *before* building a command's entries, so the
     * bound can never be exceeded by construction.
     */
    void setLiveBound(std::size_t max_live) { liveBound = max_live; }

    /**
     * Cap one class's ready queue (0 = unbounded). Same contract as
     * setLiveBound: a DCS_CHECKED invariant, not a silent drop.
     */
    void
    setQueueBound(DevClass dev, std::size_t max_queued)
    {
        queueBound[static_cast<int>(dev)] = max_queued;
    }

    /** Would @p n more entries still fit under the live bound? */
    bool
    hasCapacity(std::size_t n) const
    {
        return liveBound == 0 || liveCount + n <= liveBound;
    }

    /** Record an admission reject (whole command turned away). */
    void noteReject() { ++_rejects; }

    std::uint64_t rejects() const { return _rejects; }
    std::size_t liveBoundValue() const { return liveBound; }
    /** @} */

    /** @name Introspection. */
    /** @{ */
    std::size_t entriesLive() const { return liveCount; }
    std::uint64_t entriesIssued() const { return issuedCount; }
    std::uint64_t peakLive() const { return _peakLive; }

    /** Commands declared but not yet fully retired. */
    std::size_t openCommands() const { return remainingPerCmd.size(); }
    /** Slab capacity (high-water mark of concurrently live entries). */
    std::size_t slabSlots() const { return slab.size(); }
    /** Dependency edges currently linked. */
    std::size_t edgesLive() const { return edgeLive; }

    /**
     * Exact-occupancy audit for quiesce points: with the slab
     * freelists, a leaked slot, edge or command counter is directly
     * countable. Panics (DCS_CHECKED) naming the leak; returns
     * quiescent() so release builds can assert on the result.
     */
    bool checkQuiesce() const;
    bool
    quiescent() const
    {
        bool idle = liveCount == 0 && remainingPerCmd.empty() &&
                    edgeLive == 0 && freeCount == slab.size();
        for (const Controller &c : controllers)
            idle = idle && c.inUse == 0 && c.readyCount == 0;
        return idle;
    }

    /** Debug snapshot: per-class (ready-queued, in-use, slots). */
    struct ClassState
    {
        std::size_t ready = 0;
        int inUse = 0;
        int slots = 0;
    };
    ClassState classState(DevClass dev) const;

    /** Count of live entries in each EntryState. */
    std::array<std::size_t, 4> stateCounts() const;
    /** @} */

  private:
    /** One slab slot: the entry plus intrusive link state. While the
     *  slot is free, @c next is the freelist link; while the entry is
     *  Ready, @c next / @c prev thread the class ready list. */
    struct Slot
    {
        Entry e;
        std::uint32_t gen = 0;  //!< generation of the current/next id
        std::int32_t next = -1;
        std::int32_t prev = -1;
        std::int32_t depHead = -1; //!< first dependent edge
        std::int32_t depTail = -1;
        bool live = false;
    };

    /** Dependency fan-out node (target stored as an id handle). */
    struct DepEdge
    {
        std::uint32_t target = 0;
        std::int32_t next = -1;
    };

    struct Controller
    {
        IssueFn issue;
        int slots = 0;
        int inUse = 0;
        std::int32_t readyHead = -1; //!< intrusive FIFO through slots
        std::int32_t readyTail = -1;
        std::size_t readyCount = 0;
    };

    static std::uint32_t
    makeId(std::int32_t slot, std::uint32_t gen)
    {
        return ((gen & kGenMask) << kSlotBits) |
               (static_cast<std::uint32_t>(slot) + 1);
    }

    /** Slot for a live id, or nullptr when stale/unknown. */
    const Slot *lookup(std::uint32_t id) const;
    Slot *
    lookup(std::uint32_t id)
    {
        return const_cast<Slot *>(
            static_cast<const Scoreboard *>(this)->lookup(id));
    }
    /** Slot for a live id; panics naming @p what when stale. */
    const Slot &require(std::uint32_t id, const char *what) const;
    Slot &
    require(std::uint32_t id, const char *what)
    {
        return const_cast<Slot &>(
            static_cast<const Scoreboard *>(this)->require(id, what));
    }

    std::int32_t allocSlot();
    void freeSlot(std::int32_t idx);
    void pushReady(std::int32_t idx);
    std::int32_t popReadyFront(DevClass dev);
    void unlinkReady(std::int32_t idx);
    void addEdge(Slot &from, std::uint32_t target_id);
    /** Wake @p retired's dependents and settle its command count. */
    void retireBookkeeping(std::uint32_t cmd_id, std::int32_t dep_head);

    void makeReady(std::uint32_t id);
    void tryIssue(DevClass dev);

    const HdcTiming &timing;
    std::vector<Slot> slab;
    std::int32_t freeHead = -1;
    std::size_t freeCount = 0;
    std::size_t liveCount = 0;
    std::vector<DepEdge> edges;
    std::int32_t edgeFreeHead = -1;
    std::size_t edgeLive = 0;
    ProbeMap<std::uint32_t, std::uint32_t> remainingPerCmd;
    Controller controllers[4];
    std::function<void(std::uint32_t)> onCommandDone;
    std::uint64_t issuedCount = 0;
    std::uint64_t _peakLive = 0;
    std::uint64_t _rejects = 0;
    std::size_t liveBound = 0;
    std::size_t queueBound[4] = {0, 0, 0, 0};
    std::vector<std::uint32_t> armQueue;
};

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_SCOREBOARD_HH
