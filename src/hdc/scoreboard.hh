/**
 * @file
 * The HDC Engine scoreboard (paper §III-B, Fig. 6).
 *
 * The scoreboard splits each user-requested D2D command into device
 * commands, stores them as entries carrying (dev, r/w, src, dst, aux,
 * state), and dynamically schedules them: an entry moves
 * wait -> ready when its dependencies complete, ready -> issued when
 * its target controller accepts it, issued -> done at completion.
 * When every entry of a D2D command is done, the command's id is
 * handed to the completion path to interrupt HDC Driver.
 */

#ifndef DCS_HDC_SCOREBOARD_HH
#define DCS_HDC_SCOREBOARD_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "hdc/timing.hh"
#include "ndp/transform.hh"
#include "sim/check.hh"
#include "sim/sim_object.hh"

namespace dcs {
namespace hdc {

/** Which controller executes an entry. */
enum class DevClass : std::uint8_t
{
    SsdCtrl,
    NicCtrl,
    NdpUnit,
    Gather, //!< NIC receive-side packet gather (completion-driven)
};

/** Entry lifecycle (paper Fig. 6: wait / ready-issue / issue-done). */
enum class EntryState : std::uint8_t
{
    Wait,
    Ready,
    Issued,
    Done,
};

/** One scoreboard entry == one device command. */
struct Entry
{
    std::uint32_t id = 0;        //!< entry id (scoreboard-local)
    std::uint32_t cmdId = 0;     //!< owning D2D command
    DevClass dev{};
    bool write = false;          //!< r/w field
    std::uint64_t src = 0;       //!< device-specific source address
    std::uint64_t dst = 0;       //!< device-specific dest address
    std::uint64_t len = 0;
    std::uint64_t aux = 0;       //!< chunk index / seq offset / etc.
    std::uint64_t flow = 0;      //!< span-tracer request identity
    ndp::Function fn = ndp::Function::None;
    EntryState state = EntryState::Wait;

    std::uint32_t pendingDeps = 0;
    std::vector<std::uint32_t> dependents;
};

/**
 * The scheduler. Controllers are registered as issue targets; the
 * scoreboard pushes ready entries to them subject to per-controller
 * occupancy limits, charging the FPGA cycle cost of every decision.
 */
class Scoreboard : public SimObject
{
  public:
    /** Issue callback: start executing @p e; call complete(e.id) later. */
    using IssueFn = std::function<void(const Entry &)>;

    Scoreboard(EventQueue &eq, std::string name, const HdcTiming &timing);

    /**
     * Register the controller for @p dev.
     * @param slots max concurrently issued entries (queue depth).
     */
    void registerController(DevClass dev, IssueFn issue, int slots);

    /** Create an entry; returns its id. Dependencies added before arm(). */
    std::uint32_t addEntry(Entry e);

    /** Declare that @p after cannot issue until @p before is done. */
    void addDependency(std::uint32_t before, std::uint32_t after);

    /**
     * Finish building a command's entries: evaluate initial readiness
     * and start issuing.
     */
    void arm();

    /** Controller callback: entry @p id finished executing. */
    void complete(std::uint32_t id);

    /**
     * Update a not-yet-issued entry's length (dynamic length
     * propagation for compression outputs).
     */
    void setEntryLen(std::uint32_t id, std::uint64_t len);

    /** Install the watcher told when all entries of a cmd are done. */
    void setCommandDone(std::function<void(std::uint32_t cmd_id)> fn);

    /** Track how many entries a D2D command contributed. */
    void
    declareCommand(std::uint32_t cmd_id, std::uint32_t n_entries)
    {
        DCS_CHECK_GT(n_entries, 0u, "command declared with no entries");
        remainingPerCmd[cmd_id] = n_entries;
    }

    /** True while @p id exists (not yet retired). */
    bool hasEntry(std::uint32_t id) const { return entries.count(id); }

    /** @name Admission control (finite queues under overload). */
    /** @{ */

    /**
     * Cap total live entries (0 = unbounded). Enforced as a
     * DCS_CHECKED invariant in addEntry: callers must consult
     * hasCapacity() *before* building a command's entries, so the
     * bound can never be exceeded by construction.
     */
    void setLiveBound(std::size_t max_live) { liveBound = max_live; }

    /**
     * Cap one class's ready queue (0 = unbounded). Same contract as
     * setLiveBound: a DCS_CHECKED invariant, not a silent drop.
     */
    void
    setQueueBound(DevClass dev, std::size_t max_queued)
    {
        queueBound[static_cast<int>(dev)] = max_queued;
    }

    /** Would @p n more entries still fit under the live bound? */
    bool
    hasCapacity(std::size_t n) const
    {
        return liveBound == 0 || entries.size() + n <= liveBound;
    }

    /** Record an admission reject (whole command turned away). */
    void noteReject() { ++_rejects; }

    std::uint64_t rejects() const { return _rejects; }
    std::size_t liveBoundValue() const { return liveBound; }
    /** @} */

    /** @name Introspection. */
    /** @{ */
    std::size_t entriesLive() const { return entries.size(); }
    std::uint64_t entriesIssued() const { return issuedCount; }
    std::uint64_t peakLive() const { return _peakLive; }

    /** Debug snapshot: per-class (ready-queued, in-use, slots). */
    struct ClassState
    {
        std::size_t ready = 0;
        int inUse = 0;
        int slots = 0;
    };
    ClassState classState(DevClass dev) const;

    /** Count of live entries in each EntryState. */
    std::array<std::size_t, 4> stateCounts() const;
    /** @} */

  private:
    struct Controller
    {
        IssueFn issue;
        int slots = 0;
        int inUse = 0;
        std::deque<std::uint32_t> readyQueue;
    };

    void makeReady(std::uint32_t id);
    void tryIssue(DevClass dev);

    const HdcTiming &timing;
    std::unordered_map<std::uint32_t, Entry> entries;
    std::unordered_map<std::uint32_t, std::uint32_t> remainingPerCmd;
    Controller controllers[4];
    std::function<void(std::uint32_t)> onCommandDone;
    std::uint32_t nextId = 1;
    std::uint64_t issuedCount = 0;
    std::uint64_t _peakLive = 0;
    std::uint64_t _rejects = 0;
    std::size_t liveBound = 0;
    std::size_t queueBound[4] = {0, 0, 0, 0};
    std::vector<std::uint32_t> armQueue;
};

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_SCOREBOARD_HH
