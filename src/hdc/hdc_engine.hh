/**
 * @file
 * HDC Engine: the FPGA-based hardware device-control engine that is
 * the paper's core contribution (§III, §IV-C).
 *
 * One PCIe endpoint containing:
 *  - a host interface: 64-entry x 64 B command queue + command parser
 *    + interrupt generator (completions delivered in request order);
 *  - the scoreboard that splits D2D commands into device commands and
 *    schedules them;
 *  - standard device controllers for NVMe SSDs and 10-GbE NICs that
 *    submit/complete real device commands over PCIe P2P;
 *  - a pool of NDP units for intermediate processing;
 *  - on-chip BRAM (device queues, header buffers) and 1 GiB on-board
 *    DDR3 chunked into 64 KiB intermediate/receive buffers.
 */

#ifndef DCS_HDC_HDC_ENGINE_HH
#define DCS_HDC_HDC_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "hdc/d2d_command.hh"
#include "hdc/ndp_pool.hh"
#include "hdc/nic_controller.hh"
#include "hdc/nvme_controller.hh"
#include "hdc/scoreboard.hh"
#include "hdc/timing.hh"
#include "mem/chunk_allocator.hh"
#include "mem/memory.hh"
#include "pcie/device.hh"
#include "sim/probe_map.hh"
#include "sim/small_vec.hh"

namespace dcs {
namespace hdc {

/** Engine sizing and timing. */
struct HdcEngineParams
{
    std::uint64_t bramBytes = 1ull << 20;   //!< on-chip queue memory
    std::uint64_t dramBytes = 1ull << 30;   //!< on-board DDR3
    std::uint64_t chunkSize = 64 * 1024;    //!< paper §IV-C block size
    std::uint32_t recvBufSize = 16 * 1024;  //!< per-frame recv buffer
    std::uint32_t recvArenaFrames = 1024;
    double ndpTargetGbps = 10.0;
    HdcTiming timing{};

    /** @name Control-path batching (0 = off, bit-identical to the
     *  per-command legacy path). Doorbell knobs batch the engine's
     *  P2P ring-tail writes; MSI knobs aggregate completion
     *  interrupts into the BAR completion ring. */
    /** @{ */
    std::uint32_t doorbellBatch = 0; //!< tail updates per MMIO flush
    Tick doorbellHoldoff = 0;        //!< max delay before a pending flush
    std::uint32_t msiCoalesce = 0;   //!< completions per MSI
    Tick msiHoldoff = 0;             //!< max delay before an MSI flush
    /** @} */

    /** @name Admission control (0 = unbounded). Commands that would
     *  overflow are rejected with a 429-style NACK completion. */
    /** @{ */
    std::uint32_t maxActiveCmds = 0;  //!< concurrent admitted commands
    std::uint32_t maxLiveEntries = 0; //!< scoreboard live-entry cap
    /** @} */
};

/** One SSD bound to the engine. */
struct SsdBinding
{
    Addr bar0 = 0;
    std::uint16_t qid = 2;     //!< dedicated IO queue pair id
    std::uint16_t qdepth = 64;
};

/** Attachment info the driver passes when binding devices. */
struct HdcDeviceConfig
{
    Addr ssdBar0 = 0; //!< shorthand: primary SSD (bindings[0])
    std::uint16_t ssdQid = 2;
    std::uint16_t ssdQdepth = 64;
    /** Additional SSDs beyond the primary one — the engine's
     *  disaggregate controllers make adding devices cheap (paper
     *  §III-C flexibility claim). */
    std::vector<SsdBinding> extraSsds;
    Addr nicBar0 = 0;
    std::uint32_t nicRingEntries = 256;
    std::uint32_t mss = 8192;
    /** Paper §IV-C notifies completions strictly in request order
     *  ("simple implementation"); disable to ablate the head-of-line
     *  blocking that ordering causes. */
    bool inOrderCompletion = true;
};

/** The engine. */
class HdcEngine : public pcie::Device
{
  public:
    /** Fixed offsets in the engine's single BAR. */
    static constexpr std::uint64_t regDoorbell = 0x0;
    static constexpr std::uint64_t cmdQueueOff = 0x1000;
    static constexpr std::uint32_t cmdQueueEntries = 64;
    static constexpr std::uint64_t resultOff = 0x2000;
    static constexpr std::uint64_t resultSlotSize = 64;
    /** Coalesced-completion ring: cmdQueueEntries x 4 B command ids
     *  (bit 31 set = admission NACK). An MSI's value is the ring's
     *  producer count; the driver drains [consumed, produced). */
    static constexpr std::uint64_t cplRingOff = 0x4000;
    /** Completion-value bit marking an admission reject (429). */
    static constexpr std::uint32_t cplNackBit = 0x80000000u;
    static constexpr std::uint64_t bramOff = 0x100000;
    static constexpr std::uint64_t dramOff = 0x40000000ull;

    HdcEngine(EventQueue &eq, std::string name, Addr bar,
              HdcEngineParams p = {});

    void busWrite(Addr addr, std::span<const std::uint8_t> data) override;
    void busRead(Addr addr, std::span<std::uint8_t> data) override;

    /** Zero-copy DMA into/out of the DRAM window (adopt/borrow). */
    void busWriteBulk(Addr addr, const BufChain &data) override;
    BufChain busReadBulk(Addr addr, std::uint64_t len) override;

    /** @name Driver-facing configuration (modelled config registers). */
    /** @{ */

    /** Bind the SSD and NIC; returns once internal layout is fixed. */
    void configureDevices(const HdcDeviceConfig &cfg);

    /** Register a TCP connection's flow state for the NIC controller. */
    void registerConnection(std::uint32_t conn_id, net::FlowInfo out,
                            std::uint32_t next_rx_seq);

    /** Where completion MSIs (data = D2D command id) are written. */
    void setMsiAddress(Addr a) { msiAddr = a; }

    /** Begin posting NIC receive buffers (after the driver has
     *  programmed the NIC's ring registers). */
    void startNicRx();

    /** Toggle the §IV-C in-order completion notification (modelled
     *  config bit; the relaxed mode is an ablation). */
    void
    setInOrderCompletion(bool in_order)
    {
        devCfg.inOrderCompletion = in_order;
    }

    /** Bus addresses of the dedicated NVMe queues (driver needs them
     *  to issue the Create IO CQ/SQ admin commands). */
    Addr nvmeSqBus(std::size_t ssd_idx = 0) const;
    Addr nvmeCqBus(std::size_t ssd_idx = 0) const;

    /** Number of SSDs bound to this engine. */
    std::size_t ssdCount() const { return _nvme.size(); }
    /** Bus addresses of the NIC rings (driver programs the NIC). */
    Addr nicSendRingBus() const;
    Addr nicSendCplBus() const;
    Addr nicRecvRingBus() const;
    Addr nicRecvCplBus() const;
    /** @} */

    Addr bar() const { return _bar; }
    Addr cmdSlotBus(std::uint32_t idx) const;
    Addr doorbellBus() const { return _bar + regDoorbell; }
    Addr resultSlotBus(std::uint32_t cmd_id) const;

    /** @name Internal services used by the controllers/pool. */
    /** @{ */
    Memory &bram() { return _bram; }
    Memory &dram() { return _dram; }
    Addr bramBus(std::uint64_t off) const { return _bar + bramOff + off; }
    Addr dramBus(std::uint64_t off) const { return _bar + dramOff + off; }

    void engDmaRead(Addr a, std::uint64_t n,
                    std::function<void(BufChain)> done);
    void engDmaWrite(Addr a, BufChain d, std::function<void()> done);
    void
    engDmaWrite(Addr a, std::vector<std::uint8_t> d,
                std::function<void()> done)
    {
        engDmaWrite(a, BufChain(Buffer::fromVector(std::move(d))),
                    std::move(done));
    }
    void engMmioWrite(Addr a, std::uint64_t v, unsigned size);

    /** Unified completion funnel from all controllers. */
    void entryCompleted(std::uint32_t entry_id, std::uint64_t out_len);

    /** Deposit a digest into a command's result slot. */
    void writeResult(std::uint32_t cmd_id,
                     std::span<const std::uint8_t> digest);
    /** @} */

    /** @name Introspection. */
    /** @{ */
    Scoreboard &scoreboard() { return *_scoreboard; }
    HdcNvmeController &nvmeCtrl(std::size_t idx = 0)
    {
        return *_nvme.at(idx);
    }
    HdcNicController &nicCtrl() { return *_nic; }
    NdpPool &ndpPool() { return *_ndp; }
    std::uint64_t commandsCompleted() const { return _cmdsDone; }
    std::uint64_t interruptsRaised() const { return _irqs; }
    std::uint64_t commandsRejected() const { return _cmdRejects; }
    /** Commands admitted and not yet retired (telemetry gauge). */
    std::size_t activeCommands() const { return activeCount; }

    /**
     * Exact-occupancy audit at quiesce: every command-pool slot,
     * scoreboard slot/edge, NDP stream and DRAM buffer chunk must be
     * back on its freelist once all commands have drained — a leaked
     * rejected/retired command is directly countable. Panics
     * (DCS_CHECKED) naming the leak; returns quiescent().
     */
    bool checkQuiesce() const;
    bool quiescent() const;
    /** Completions parked awaiting the coalesced MSI (gauge). */
    std::uint32_t cplRingOccupancy() const { return cplPending; }
    /** Engine-side P2P doorbell MMIO writes (all controllers). */
    std::uint64_t doorbellWrites() const;
    const ChunkAllocator &bufferAllocator() const { return *bufAlloc; }
    const HdcEngineParams &params() const { return _params; }
    /** @} */

  private:
    /** Length inheritance: NDP entry whose output length the send
     *  entry must adopt (compression changes the payload size). */
    struct LenInheritRec
    {
        std::uint32_t ndpEntry = 0;
        std::uint32_t sendEntry = 0;
    };
    /** Buffer lifetime: DRAM chunk released when @c entry completes. */
    struct FreeRec
    {
        std::uint32_t entry = 0;
        std::uint64_t chunk = 0;
    };

    /**
     * Pooled per-command record. One slot per command-queue entry,
     * addressed by cmd.id % cmdQueueEntries (ids are monotonic and the
     * driver keeps fewer than cmdQueueEntries outstanding, so a live
     * slot is never re-claimed). The small vectors keep the common
     * chunk counts inline and retain spilled capacity across
     * occupants, so steady-state command processing never allocates.
     */
    struct CmdRecord
    {
        D2dCommand cmd;
        SmallVec<ExtentRec, 4> srcExt;
        SmallVec<ExtentRec, 4> dstExt;
        SmallVec<std::uint8_t, 48> aux;
        bool inUse = false;
        bool done = false;
        SmallVec<std::uint64_t, 4> ownedChunks; //!< DRAM offsets to free
        std::uint64_t flow = 0; //!< span-tracer request identity
        SmallVec<LenInheritRec, 2> lenInherit;
        SmallVec<FreeRec, 8> freeOnComplete;
    };

    /** Live record for @p cmd_id, or nullptr. */
    CmdRecord *findActive(std::uint32_t cmd_id);
    const CmdRecord *findActive(std::uint32_t cmd_id) const;
    /** Live record for @p cmd_id; panics naming @p what if absent. */
    CmdRecord &requireActive(std::uint32_t cmd_id, const char *what);
    /** Claim and reset the pool slot for a newly admitted command. */
    CmdRecord &claimRecord(const D2dCommand &cmd);
    /** Return a retired command's slot to the pool. */
    void releaseRecord(CmdRecord &rec);

    void pumpCmdQueue();
    void processCommand(const D2dCommand &cmd);
    void buildPipeline(CmdRecord &ac);
    void commandFinished(std::uint32_t cmd_id);
    void drainCompletions();

    /** Would admitting @p cmd stay inside the configured bounds? */
    bool admitCommand(const D2dCommand &cmd) const;
    /** Raise (or enqueue, when coalescing) a completion/NACK MSI. */
    void notifyCompletion(std::uint32_t cmd_id, std::uint64_t flow,
                          bool rejected);
    /** Fire the coalesced MSI for everything pending in the ring. */
    void flushMsi();

    /** One contiguous device run of an extent walk. */
    struct Run
    {
        std::uint64_t addr = 0;
        std::uint64_t len = 0;
    };
    using RunVec = SmallVec<Run, 8>;

    /** Append to @p out the runs of @p ext covering [off, off+len). */
    static void extentRuns(const ExtentRec *ext, std::size_t n_ext,
                           std::uint64_t off, std::uint64_t len,
                           RunVec &out);

    Addr _bar;
    HdcEngineParams _params;
    Memory _bram;
    Memory _dram;
    Memory results;
    std::unique_ptr<ChunkAllocator> bufAlloc;

    std::unique_ptr<Scoreboard> _scoreboard;
    std::vector<std::unique_ptr<HdcNvmeController>> _nvme;
    std::unique_ptr<HdcNicController> _nic;
    std::unique_ptr<NdpPool> _ndp;

    // BRAM layout (fixed at configureDevices time).
    struct NvmeBramLayout
    {
        std::uint64_t sq = 0, cq = 0, prp = 0;
    };
    std::vector<NvmeBramLayout> bramNvme;
    std::uint64_t bramNicSend = 0, bramNicSendCpl = 0;
    std::uint64_t bramNicRecv = 0, bramNicRecvCpl = 0, bramNicHdr = 0;
    std::uint64_t dramRecvArena = 0;
    HdcDeviceConfig devCfg;
    bool devicesConfigured = false;

    // Command queue state.
    std::array<std::uint8_t, cmdQueueEntries * sizeof(D2dCommand)>
        cmdqRaw{};
    std::uint32_t cmdTail = 0;   //!< host-written producer index
    std::uint32_t cmdParsed = 0; //!< engine consumer index
    bool parserBusy = false;

    /** Command-state pool: slot = cmd.id % cmdQueueEntries. */
    std::array<CmdRecord, cmdQueueEntries> cmdPool;
    std::size_t activeCount = 0;
    RingDeque<std::uint32_t> completionOrder; //!< in-order notification

    /** Per-connection TCP-order send chaining. Values are scoreboard
     *  entry-id handles that may be stale (generation-checked by
     *  hasEntry); entries persist across commands by design. */
    ProbeMap<std::uint32_t, std::uint32_t> lastSendOnConn;

    Addr msiAddr = 0;
    std::uint64_t _cmdsDone = 0;
    std::uint64_t _irqs = 0;

    // Admission + MSI-coalescing state (inert while the knobs are 0).
    std::uint64_t _cmdRejects = 0;
    std::array<std::uint8_t, cmdQueueEntries * 4> cplRingRaw{};
    std::uint32_t cplProduced = 0; //!< ring producer count (MSI value)
    std::uint32_t cplPending = 0;  //!< completions since the last MSI
    bool msiTimerArmed = false;
};

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_HDC_ENGINE_HH
