#include "hdc/timing.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dcs {
namespace hdc {

namespace {

// Paper Table III. LUT/register percentages are the totals required
// to reach 10 Gbps (multiple instances of non-pipelined cores, or a
// single instance of the fully pipelined ones).
const NdpUnitSpec kSpecs[] = {
    {ndp::Function::Md5, 3.00, 0.69, 130.0, 0.97},
    {ndp::Function::Sha1, 3.49, 1.13, 235.0, 1.10},
    {ndp::Function::Sha256, 4.28, 1.23, 130.0, 0.80},
    {ndp::Function::Aes256, 3.52, 0.99, 250.0, 40.90},
    {ndp::Function::Crc32, 0.03, 0.01, 250.0, 10.0},
    {ndp::Function::Gzip, 5.36, 2.09, 178.0, 100.0},
    // Decompression is modelled with the GZIP core's figures.
    {ndp::Function::Gunzip, 5.36, 2.09, 178.0, 100.0},
};

} // namespace

const NdpUnitSpec &
ndpSpec(ndp::Function fn)
{
    for (const auto &s : kSpecs)
        if (s.fn == fn)
            return s;
    panic("no NDP unit spec for function '%s'",
          ndp::functionName(fn).c_str());
}

int
ndpUnitsFor(ndp::Function fn, double target_gbps)
{
    const NdpUnitSpec &s = ndpSpec(fn);
    return static_cast<int>(std::ceil(target_gbps / s.perUnitGbps));
}

ResourceReport
baseEngineResources()
{
    // Paper Table IV: the device controllers + host/PCIe interface
    // occupy 116344 LUTs (38%), 91005 registers (15%), 442 BRAMs
    // (43%), 5.57 W on the VC707's Virtex-7.
    return ResourceReport{116344, 91005, 442, 5.57};
}

ResourceReport
ndpResources(ndp::Function fn, double target_gbps)
{
    const NdpUnitSpec &s = ndpSpec(fn);
    const double scale = target_gbps / 10.0;
    ResourceReport r;
    r.luts = static_cast<std::uint64_t>(virtex7Luts * s.lutPct / 100.0 *
                                        scale);
    r.regs = static_cast<std::uint64_t>(virtex7Regs * s.regPct / 100.0 *
                                        scale);
    r.brams = 2 * static_cast<std::uint64_t>(ndpUnitsFor(fn, target_gbps));
    r.watts = 0.15 * ndpUnitsFor(fn, target_gbps);
    return r;
}

} // namespace hdc
} // namespace dcs
