/**
 * @file
 * HDC Engine's standard NIC device controller (paper Fig. 7b).
 *
 * Owns the NIC's send/receive rings in HDC BRAM, generates TCP/IP
 * packet headers into a BRAM header buffer, builds NIC send commands
 * and rings the doorbell over PCIe P2P. On the receive side it posts
 * HDC DRAM packet buffers, and its packet-gather logic parses arriving
 * frames, strips headers, and places payloads contiguously in the
 * gather destination (paper §IV-C) so the following device operation
 * sees a flat buffer.
 */

#ifndef DCS_HDC_NIC_CONTROLLER_HH
#define DCS_HDC_NIC_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <list>
#include <vector>

#include "hdc/scoreboard.hh"
#include "hdc/timing.hh"
#include "mem/addr_range.hh"
#include "net/packet.hh"
#include "pcie/doorbell.hh"
#include "sim/probe_map.hh"

namespace dcs {
namespace hdc {

class HdcEngine;

/** The in-engine NIC control + packet gather path. */
class HdcNicController
{
  public:
    HdcNicController(HdcEngine &engine, const HdcTiming &timing);

    /**
     * Bind to the NIC whose rings the host driver pointed at our BRAM.
     * @param recv_arena_dram_off per-frame receive buffers in DRAM.
     */
    void configure(Addr nic_bar0, std::uint32_t ring_entries,
                   std::uint64_t send_ring_off, std::uint64_t send_cpl_off,
                   std::uint64_t recv_ring_off, std::uint64_t recv_cpl_off,
                   std::uint64_t hdr_arena_off,
                   std::uint64_t recv_arena_dram_off,
                   std::uint32_t recv_buf_size, std::uint32_t mss);

    /**
     * Post all receive buffers and ring the NIC's receive doorbell.
     * Called once the driver has programmed the NIC's ring registers.
     */
    void startRx();

    /**
     * Register an established connection's flow state (retrieved by
     * HDC Driver from the kernel TCP stack).
     */
    void registerConnection(std::uint32_t conn_id, net::FlowInfo out,
                            std::uint32_t next_rx_seq);

    /** Send entry: DRAM offset e.src, e.len bytes on connection e.aux. */
    void issueSend(const Entry &e);

    /**
     * Gather entry: expect e.len payload bytes for connection e.aux
     * arriving at stream offset e.src (relative to registration-time
     * sequence), landing at DRAM offset e.dst.
     */
    void issueGather(const Entry &e);

    /**
     * Reserve the next e_len stream bytes of @p conn_id for a
     * command; returns the absolute starting sequence.
     */
    std::uint32_t reserveRxRange(std::uint32_t conn_id,
                                 std::uint64_t e_len);

    /** Current outgoing flow snapshot (drivers sync seq back). */
    const net::FlowInfo &flowOf(std::uint32_t conn_id) const;

    /** Engine forwards BRAM writes; we react to completion rings. */
    void onBramWrite(std::uint64_t bram_off, std::uint64_t len);

    std::function<void(std::uint32_t entry_id)> onComplete;

    std::uint64_t sendsIssued() const { return sends; }
    std::uint64_t framesGathered() const { return gathered; }
    /** Sends posted to the NIC and not yet completed. */
    std::size_t sendsInflight() const { return sendsLive; }

    /** Actual send + receive doorbell MMIO writes performed. */
    std::uint64_t
    doorbellWrites() const
    {
        return sendDb.mmioWrites() + recvDb.mmioWrites();
    }

  private:
    struct Conn
    {
        net::FlowInfo out;
        std::uint32_t nextRxSeq = 0;   //!< next unreserved stream seq
    };

    struct GatherOp
    {
        std::uint32_t entryId = 0;
        std::uint32_t connId = 0;
        std::uint32_t startSeq = 0; //!< absolute
        std::uint64_t len = 0;
        std::uint64_t dstDramOff = 0;
        std::uint64_t received = 0;
        std::uint64_t traceFlow = 0;
        Tick issuedAt = 0;
    };

    /** Outstanding send: scoreboard entry + trace context. One slot
     *  per send-ring descriptor (the scoreboard's NicCtrl occupancy
     *  cap keeps a ring lap from landing on a live slot). */
    struct SendInflight
    {
        std::uint32_t entry = 0;
        std::uint64_t flow = 0;
        Tick submitted = 0;
        bool live = false;
    };

    const char *engineName() const;
    void postRecvBuffers();
    void handleSendCpl();
    void handleRecvCpl();
    void gatherFrame(BufChain frame);

    HdcEngine &engine;
    const HdcTiming &timing;

    Addr nicBar0 = 0;
    std::uint32_t entries = 0;
    std::uint64_t sendRingOff = 0, sendCplOff = 0;
    std::uint64_t recvRingOff = 0, recvCplOff = 0;
    std::uint64_t hdrArenaOff = 0;
    std::uint64_t recvArenaOff = 0;
    std::uint32_t recvBufSize = 0;
    std::uint32_t mss = 8192;
    bool configured = false;

    std::uint32_t sendPidx = 0, sendCplCidx = 0;
    std::uint32_t recvPidx = 0, recvCplCidx = 0;

    /** Match one parsed frame against the active gather ops. */
    bool tryGather(const net::ParsedFrame &parsed, const BufChain &frame);

    /** Point-lookup only (never iterated — determinism contract). */
    ProbeMap<std::uint32_t, Conn> conns;
    /** Flat per-ring-slot send tracking; sized at configure(). */
    std::vector<SendInflight> sendSlotToEntry;
    std::size_t sendsLive = 0;
    std::list<GatherOp> gathers;
    std::string track; //!< span-tracer track (stable storage)

    /** Frames whose D2D command has not arrived yet: they stay in
     *  the on-board receive buffers until a gather op claims them
     *  (or the buffer pool overflows). Held as borrowed views of the
     *  DRAM arena; buffer recycling is safe because Memory's CoW
     *  keeps the snapshot alive under later writes. */
    std::list<BufChain> unclaimedFrames;
    static constexpr std::size_t maxUnclaimed = 8192;

    std::uint64_t sends = 0;
    std::uint64_t gathered = 0;
    pcie::DoorbellBatcher sendDb; //!< send-ring pidx doorbell
    pcie::DoorbellBatcher recvDb; //!< recv-ring pidx doorbell
};

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_NIC_CONTROLLER_HH
