#include "hdc/scoreboard.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdc {

namespace {

/** Per-class literals (stable storage for trace labels). */
constexpr const char *clsTag[4] = {"ssd", "nic", "ndp", "gather"};
constexpr const char *queuedName[4] = {"queued:ssd", "queued:nic",
                                       "queued:ndp", "queued:gather"};
constexpr const char *execName[4] = {"exec:ssd", "exec:nic", "exec:ndp",
                                     "exec:gather"};

} // namespace

Scoreboard::Scoreboard(EventQueue &eq, std::string name,
                       const HdcTiming &timing)
    : SimObject(eq, std::move(name)), timing(timing)
{
    statsGroup().addCounter("issued", issuedCount,
                            "entries handed to controllers");
    statsGroup().addCounter("peak_live", _peakLive,
                            "max simultaneously tracked entries");
    statsGroup().addValue(
        "live", [this] { return static_cast<double>(liveCount); },
        "entries currently tracked");
    statsGroup().addCounter("admission_rejects", _rejects,
                            "commands turned away at admission");
    statsGroup().addValue(
        "live_bound",
        [this] { return static_cast<double>(liveBound); },
        "live-entry admission cap (0 = unbounded)");

    // Occupancy gauges: the ClassState debug snapshot exported per
    // device class, for bench --json reports and trace counter
    // tracks alike.
    for (int d = 0; d < 4; ++d) {
        const auto dev = static_cast<DevClass>(d);
        auto ready = [this, dev] {
            return static_cast<double>(classState(dev).ready);
        };
        auto in_use = [this, dev] {
            return static_cast<double>(classState(dev).inUse);
        };
        auto slots = [this, dev] {
            return static_cast<double>(classState(dev).slots);
        };
        statsGroup().addValue(std::string("ready_") + clsTag[d], ready,
                              "entries ready-queued for this class");
        statsGroup().addValue(std::string("in_use_") + clsTag[d], in_use,
                              "controller slots currently occupied");
        statsGroup().addValue(std::string("slots_") + clsTag[d], slots,
                              "controller slot capacity");
        tracer().addCounter(this->name(),
                            std::string("ready_") + clsTag[d], ready);
        tracer().addCounter(this->name(),
                            std::string("in_use_") + clsTag[d], in_use);
    }
}

const Scoreboard::Slot *
Scoreboard::lookup(std::uint32_t id) const
{
    const std::uint32_t idx = id & kSlotMask;
    if (idx == 0 || idx > slab.size())
        return nullptr;
    const Slot &s = slab[idx - 1];
    // The generation comparison is semantic, not just a debug check:
    // hasEntry() on a retired-and-recycled id must say "gone" in every
    // build (the engine's per-connection send chaining depends on it).
    if (!s.live || s.gen != (id >> kSlotBits))
        return nullptr;
    return &s;
}

const Scoreboard::Slot &
Scoreboard::require(std::uint32_t id, const char *what) const
{
    const Slot *s = lookup(id);
    if (!s)
        panic("%s: %s on unknown entry %u", name().c_str(), what, id);
    return *s;
}

std::int32_t
Scoreboard::allocSlot()
{
    if (freeHead >= 0) {
        const std::int32_t idx = freeHead;
        freeHead = slab[idx].next;
        --freeCount;
        return idx;
    }
    if (slab.size() >= kSlotMask)
        panic("%s: slot slab exhausted (%zu live entries)",
              name().c_str(), slab.size());
    slab.emplace_back();
    return static_cast<std::int32_t>(slab.size() - 1);
}

void
Scoreboard::freeSlot(std::int32_t idx)
{
    Slot &s = slab[static_cast<std::size_t>(idx)];
    DCS_INVARIANT(s.live, "%s: double free of slot %d", name().c_str(),
                  idx);
    s.live = false;
    s.gen = (s.gen + 1) & kGenMask;
    s.depHead = s.depTail = -1;
    s.prev = -1;
    s.next = freeHead;
    freeHead = idx;
    ++freeCount;
    --liveCount;
}

void
Scoreboard::pushReady(std::int32_t idx)
{
    Slot &s = slab[static_cast<std::size_t>(idx)];
    Controller &c = controllers[static_cast<int>(s.e.dev)];
    s.next = -1;
    s.prev = c.readyTail;
    if (c.readyTail >= 0)
        slab[static_cast<std::size_t>(c.readyTail)].next = idx;
    else
        c.readyHead = idx;
    c.readyTail = idx;
    ++c.readyCount;
}

std::int32_t
Scoreboard::popReadyFront(DevClass dev)
{
    Controller &c = controllers[static_cast<int>(dev)];
    const std::int32_t idx = c.readyHead;
    DCS_CHECK_GE(idx, 0, "%s: pop from empty ready list",
                 name().c_str());
    unlinkReady(idx);
    return idx;
}

void
Scoreboard::unlinkReady(std::int32_t idx)
{
    Slot &s = slab[static_cast<std::size_t>(idx)];
    Controller &c = controllers[static_cast<int>(s.e.dev)];
    if (s.prev >= 0)
        slab[static_cast<std::size_t>(s.prev)].next = s.next;
    else
        c.readyHead = s.next;
    if (s.next >= 0)
        slab[static_cast<std::size_t>(s.next)].prev = s.prev;
    else
        c.readyTail = s.prev;
    s.next = s.prev = -1;
    DCS_CHECK_GT(c.readyCount, std::size_t{0},
                 "%s: ready count underflow", name().c_str());
    --c.readyCount;
}

void
Scoreboard::addEdge(Slot &from, std::uint32_t target_id)
{
    std::int32_t idx;
    if (edgeFreeHead >= 0) {
        idx = edgeFreeHead;
        edgeFreeHead = edges[static_cast<std::size_t>(idx)].next;
    } else {
        edges.emplace_back();
        idx = static_cast<std::int32_t>(edges.size() - 1);
    }
    DepEdge &edge = edges[static_cast<std::size_t>(idx)];
    edge.target = target_id;
    edge.next = -1;
    // Tail append: dependents wake in insertion order, exactly as the
    // per-entry vector did.
    if (from.depTail >= 0)
        edges[static_cast<std::size_t>(from.depTail)].next = idx;
    else
        from.depHead = idx;
    from.depTail = idx;
    ++edgeLive;
}

void
Scoreboard::registerController(DevClass dev, IssueFn issue, int slots)
{
    Controller &c = controllers[static_cast<int>(dev)];
    c.issue = std::move(issue);
    c.slots = slots;
}

void
Scoreboard::setCommandDone(std::function<void(std::uint32_t)> fn)
{
    onCommandDone = std::move(fn);
}

std::uint32_t
Scoreboard::addEntry(Entry e)
{
    DCS_INVARIANT(liveBound == 0 || liveCount < liveBound,
                  "%s: entry exceeds live bound %zu (admission "
                  "control bypassed)",
                  name().c_str(), liveBound);
    const std::int32_t idx = allocSlot();
    Slot &s = slab[static_cast<std::size_t>(idx)];
    const std::uint32_t id = makeId(idx, s.gen);
    e.id = id;
    e.state = EntryState::Wait;
    e.pendingDeps = 0;
    s.e = e;
    s.live = true;
    s.next = s.prev = -1;
    s.depHead = s.depTail = -1;
    ++liveCount;
    armQueue.push_back(id);
    _peakLive = std::max<std::uint64_t>(_peakLive, liveCount);
    return id;
}

void
Scoreboard::addDependency(std::uint32_t before, std::uint32_t after)
{
    Slot *bslot = lookup(before);
    Slot *aslot = lookup(after);
    if (!bslot || !aslot)
        panic("%s: dependency on unknown entry", name().c_str());
    addEdge(*bslot, after);
    ++aslot->e.pendingDeps;
}

void
Scoreboard::arm()
{
    // Index loop: nothing on the makeReady/tryIssue path appends to
    // armQueue synchronously (issue callbacks are deferred events).
    // clear() keeps the vector's capacity for the next command.
    for (std::size_t i = 0; i < armQueue.size(); ++i) {
        const std::uint32_t id = armQueue[i];
        const Slot *s = lookup(id);
        if (!s)
            continue;
        if (s->e.pendingDeps == 0 && s->e.state == EntryState::Wait)
            makeReady(id);
    }
    armQueue.clear();
}

void
Scoreboard::makeReady(std::uint32_t id)
{
    Slot &s = require(id, "makeReady");
    Entry &e = s.e;
    DCS_INVARIANT(e.state == EntryState::Wait,
                  "%s: entry %u became ready from state %d",
                  name().c_str(), id, static_cast<int>(e.state));
    DCS_CHECK_EQ(e.pendingDeps, 0u, "%s: entry %u ready with deps pending",
                 name().c_str(), id);
    e.state = EntryState::Ready;
    TRACE_SPAN_BEGIN(tracer(), now(), name(),
                     queuedName[static_cast<int>(e.dev)], id, e.flow);
    Controller &c = controllers[static_cast<int>(e.dev)];
    const std::size_t qb = queueBound[static_cast<int>(e.dev)];
    DCS_INVARIANT(qb == 0 || c.readyCount < qb,
                  "%s: class %s ready queue exceeds bound %zu",
                  name().c_str(), clsTag[static_cast<int>(e.dev)], qb);
    pushReady(static_cast<std::int32_t>((id & kSlotMask) - 1));
    tryIssue(e.dev);
}

void
Scoreboard::tryIssue(DevClass dev)
{
    Controller &c = controllers[static_cast<int>(dev)];
    if (!c.issue)
        panic("%s: no controller registered for device class %d",
              name().c_str(), static_cast<int>(dev));
    while (c.inUse < c.slots && c.readyCount > 0) {
        const std::int32_t idx = popReadyFront(dev);
        Slot &s = slab[static_cast<std::size_t>(idx)];
        Entry &e = s.e;
        const std::uint32_t id = e.id;
        DCS_INVARIANT(e.state == EntryState::Ready,
                      "%s: issuing entry %u in state %d", name().c_str(),
                      id, static_cast<int>(e.state));
        e.state = EntryState::Issued;
        TRACE_SPAN_END(tracer(), now(), name(),
                       queuedName[static_cast<int>(dev)], id);
        TRACE_SPAN_BEGIN(tracer(), now(), name(),
                         execName[static_cast<int>(dev)], id, e.flow);
        ++c.inUse;
        DCS_CHECK_LE(c.inUse, c.slots,
                     "%s: controller occupancy over slot limit",
                     name().c_str());
        ++issuedCount;
        // The issue decision itself costs scoreboard cycles.
        schedule(timing.cycles(timing.scoreboardIssueCycles),
                 [this, id, dev] {
                     const Slot *it = lookup(id);
                     if (!it)
                         panic("%s: issued entry vanished", name().c_str());
                     controllers[static_cast<int>(dev)].issue(it->e);
                 });
    }
}

void
Scoreboard::setEntryLen(std::uint32_t id, std::uint64_t len)
{
    Slot *s = lookup(id);
    if (!s)
        panic("%s: setEntryLen on unknown entry %u", name().c_str(), id);
    if (s->e.state == EntryState::Issued ||
        s->e.state == EntryState::Done)
        panic("%s: setEntryLen after issue of entry %u", name().c_str(),
              id);
    s->e.len = len;
}

void
Scoreboard::retireBookkeeping(std::uint32_t cmd_id, std::int32_t dep_head)
{
    // Wake dependents in insertion order, recycling the edge nodes.
    std::int32_t eidx = dep_head;
    while (eidx >= 0) {
        DepEdge &edge = edges[static_cast<std::size_t>(eidx)];
        const std::uint32_t dep_id = edge.target;
        const std::int32_t next = edge.next;
        edge.next = edgeFreeHead;
        edgeFreeHead = eidx;
        DCS_CHECK_GT(edgeLive, std::size_t{0},
                     "%s: edge count underflow", name().c_str());
        --edgeLive;
        eidx = next;

        Slot *dslot = lookup(dep_id);
        if (!dslot)
            continue;
        if (--dslot->e.pendingDeps == 0 &&
            dslot->e.state == EntryState::Wait)
            makeReady(dep_id);
    }

    // Command-level completion tracking.
    std::uint32_t *remaining = remainingPerCmd.find(cmd_id);
    if (!remaining)
        panic("%s: entry for undeclared command %u", name().c_str(),
              cmd_id);
    if (--*remaining == 0) {
        remainingPerCmd.erase(cmd_id);
        if (onCommandDone)
            onCommandDone(cmd_id);
    }
}

void
Scoreboard::complete(std::uint32_t id)
{
    Slot *slot = lookup(id);
    if (!slot)
        panic("%s: completion for unknown entry %u", name().c_str(), id);
    Entry &e = slot->e;
    if (e.state != EntryState::Issued)
        panic("%s: completing entry %u in state %d", name().c_str(), id,
              static_cast<int>(e.state));
    e.state = EntryState::Done;
    TRACE_SPAN_END(tracer(), now(), name(),
                   execName[static_cast<int>(e.dev)], id);

    Controller &c = controllers[static_cast<int>(e.dev)];
    --c.inUse;
    DCS_CHECK_GE(c.inUse, 0, "%s: controller occupancy went negative",
                 name().c_str());
    // The slot is free *now*: entries already sitting in the ready
    // queue must not stall for the completion-bookkeeping window.
    // Dependent wakeup still happens at retire time below.
    tryIssue(e.dev);

    schedule(timing.cycles(timing.scoreboardCompleteCycles), [this, id] {
        Slot *s2 = lookup(id);
        if (!s2)
            return;
        DCS_INVARIANT(s2->e.state == EntryState::Done,
                      "%s: retiring entry %u in state %d", name().c_str(),
                      id, static_cast<int>(s2->e.state));
        const std::uint32_t cmd_id = s2->e.cmdId;
        const std::uint64_t flow = s2->e.flow;
        const std::int32_t dep_head = s2->depHead;
        // Recycle the slot before waking anyone: the id is stale from
        // here on (hasEntry says no), matching the erase-then-wake
        // order of the retirement path's contract.
        freeSlot(static_cast<std::int32_t>((id & kSlotMask) - 1));
        TRACE_FLOW(tracer(), now(), name(), "retire", flow);
        retireBookkeeping(cmd_id, dep_head);
    });
}

void
Scoreboard::cancel(std::uint32_t id)
{
    Slot *slot = lookup(id);
    if (!slot)
        panic("%s: cancel of unknown entry %u", name().c_str(), id);
    Entry &e = slot->e;
    if (e.state == EntryState::Issued || e.state == EntryState::Done)
        panic("%s: cancel of entry %u after issue (state %d)",
              name().c_str(), id, static_cast<int>(e.state));
    const std::int32_t idx =
        static_cast<std::int32_t>((id & kSlotMask) - 1);
    if (e.state == EntryState::Ready) {
        // Mid-list unlink: a cancelled entry may sit anywhere in its
        // class's ready FIFO.
        TRACE_SPAN_END(tracer(), now(), name(),
                       queuedName[static_cast<int>(e.dev)], id);
        unlinkReady(idx);
    }
    const std::uint32_t cmd_id = e.cmdId;
    const std::uint64_t flow = e.flow;
    const std::int32_t dep_head = slot->depHead;
    freeSlot(idx);
    TRACE_FLOW(tracer(), now(), name(), "cancel", flow);
    retireBookkeeping(cmd_id, dep_head);
}

Scoreboard::ClassState
Scoreboard::classState(DevClass dev) const
{
    const Controller &c = controllers[static_cast<int>(dev)];
    return {c.readyCount, c.inUse, c.slots};
}

std::array<std::size_t, 4>
Scoreboard::stateCounts() const
{
    std::array<std::size_t, 4> counts{};
    // Slab scan in slot order: deterministic by construction.
    for (const Slot &s : slab) {
        if (s.live)
            ++counts[static_cast<std::size_t>(s.e.state)];
    }
    return counts;
}

bool
Scoreboard::checkQuiesce() const
{
    DCS_INVARIANT(liveCount == 0,
                  "%s: quiesce with %zu live entries", name().c_str(),
                  liveCount);
    DCS_INVARIANT(remainingPerCmd.empty(),
                  "%s: quiesce with %zu open commands", name().c_str(),
                  remainingPerCmd.size());
    DCS_INVARIANT(edgeLive == 0,
                  "%s: quiesce with %zu linked dependency edges",
                  name().c_str(), edgeLive);
    DCS_INVARIANT(freeCount == slab.size(),
                  "%s: quiesce with %zu of %zu slots unaccounted",
                  name().c_str(), slab.size() - freeCount, slab.size());
    for (int d = 0; d < 4; ++d) {
        DCS_INVARIANT(controllers[d].inUse == 0,
                      "%s: quiesce with class %s occupied",
                      name().c_str(), clsTag[d]);
        DCS_INVARIANT(controllers[d].readyCount == 0,
                      "%s: quiesce with class %s ready-queued",
                      name().c_str(), clsTag[d]);
    }
    return quiescent();
}

} // namespace hdc
} // namespace dcs
