#include "hdc/scoreboard.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdc {

namespace {

/** Per-class literals (stable storage for trace labels). */
constexpr const char *clsTag[4] = {"ssd", "nic", "ndp", "gather"};
constexpr const char *queuedName[4] = {"queued:ssd", "queued:nic",
                                       "queued:ndp", "queued:gather"};
constexpr const char *execName[4] = {"exec:ssd", "exec:nic", "exec:ndp",
                                     "exec:gather"};

} // namespace

Scoreboard::Scoreboard(EventQueue &eq, std::string name,
                       const HdcTiming &timing)
    : SimObject(eq, std::move(name)), timing(timing)
{
    statsGroup().addCounter("issued", issuedCount,
                            "entries handed to controllers");
    statsGroup().addCounter("peak_live", _peakLive,
                            "max simultaneously tracked entries");
    statsGroup().addValue(
        "live", [this] { return static_cast<double>(entries.size()); },
        "entries currently tracked");
    statsGroup().addCounter("admission_rejects", _rejects,
                            "commands turned away at admission");
    statsGroup().addValue(
        "live_bound",
        [this] { return static_cast<double>(liveBound); },
        "live-entry admission cap (0 = unbounded)");

    // Occupancy gauges: the ClassState debug snapshot exported per
    // device class, for bench --json reports and trace counter
    // tracks alike.
    for (int d = 0; d < 4; ++d) {
        const auto dev = static_cast<DevClass>(d);
        auto ready = [this, dev] {
            return static_cast<double>(classState(dev).ready);
        };
        auto in_use = [this, dev] {
            return static_cast<double>(classState(dev).inUse);
        };
        auto slots = [this, dev] {
            return static_cast<double>(classState(dev).slots);
        };
        statsGroup().addValue(std::string("ready_") + clsTag[d], ready,
                              "entries ready-queued for this class");
        statsGroup().addValue(std::string("in_use_") + clsTag[d], in_use,
                              "controller slots currently occupied");
        statsGroup().addValue(std::string("slots_") + clsTag[d], slots,
                              "controller slot capacity");
        tracer().addCounter(this->name(),
                            std::string("ready_") + clsTag[d], ready);
        tracer().addCounter(this->name(),
                            std::string("in_use_") + clsTag[d], in_use);
    }
}

void
Scoreboard::registerController(DevClass dev, IssueFn issue, int slots)
{
    Controller &c = controllers[static_cast<int>(dev)];
    c.issue = std::move(issue);
    c.slots = slots;
}

void
Scoreboard::setCommandDone(std::function<void(std::uint32_t)> fn)
{
    onCommandDone = std::move(fn);
}

std::uint32_t
Scoreboard::addEntry(Entry e)
{
    e.id = nextId++;
    e.state = EntryState::Wait;
    const std::uint32_t id = e.id;
    DCS_INVARIANT(liveBound == 0 || entries.size() < liveBound,
                  "%s: entry %u exceeds live bound %zu (admission "
                  "control bypassed)",
                  name().c_str(), id, liveBound);
    entries.emplace(id, std::move(e));
    armQueue.push_back(id);
    _peakLive = std::max(_peakLive, entries.size());
    return id;
}

void
Scoreboard::addDependency(std::uint32_t before, std::uint32_t after)
{
    auto bit = entries.find(before);
    auto ait = entries.find(after);
    if (bit == entries.end() || ait == entries.end())
        panic("%s: dependency on unknown entry", name().c_str());
    bit->second.dependents.push_back(after);
    ++ait->second.pendingDeps;
}

void
Scoreboard::arm()
{
    std::vector<std::uint32_t> pending;
    pending.swap(armQueue);
    for (std::uint32_t id : pending) {
        auto it = entries.find(id);
        if (it == entries.end())
            continue;
        if (it->second.pendingDeps == 0 &&
            it->second.state == EntryState::Wait)
            makeReady(id);
    }
}

void
Scoreboard::makeReady(std::uint32_t id)
{
    Entry &e = entries.at(id);
    DCS_INVARIANT(e.state == EntryState::Wait,
                  "%s: entry %u became ready from state %d",
                  name().c_str(), id, static_cast<int>(e.state));
    DCS_CHECK_EQ(e.pendingDeps, 0u, "%s: entry %u ready with deps pending",
                 name().c_str(), id);
    e.state = EntryState::Ready;
    TRACE_SPAN_BEGIN(tracer(), now(), name(),
                     queuedName[static_cast<int>(e.dev)], id, e.flow);
    Controller &c = controllers[static_cast<int>(e.dev)];
    const std::size_t qb = queueBound[static_cast<int>(e.dev)];
    DCS_INVARIANT(qb == 0 || c.readyQueue.size() < qb,
                  "%s: class %s ready queue exceeds bound %zu",
                  name().c_str(), clsTag[static_cast<int>(e.dev)], qb);
    c.readyQueue.push_back(id);
    tryIssue(e.dev);
}

void
Scoreboard::tryIssue(DevClass dev)
{
    Controller &c = controllers[static_cast<int>(dev)];
    if (!c.issue)
        panic("%s: no controller registered for device class %d",
              name().c_str(), static_cast<int>(dev));
    while (c.inUse < c.slots && !c.readyQueue.empty()) {
        const std::uint32_t id = c.readyQueue.front();
        c.readyQueue.pop_front();
        Entry &e = entries.at(id);
        DCS_INVARIANT(e.state == EntryState::Ready,
                      "%s: issuing entry %u in state %d", name().c_str(),
                      id, static_cast<int>(e.state));
        e.state = EntryState::Issued;
        TRACE_SPAN_END(tracer(), now(), name(),
                       queuedName[static_cast<int>(dev)], id);
        TRACE_SPAN_BEGIN(tracer(), now(), name(),
                         execName[static_cast<int>(dev)], id, e.flow);
        ++c.inUse;
        DCS_CHECK_LE(c.inUse, c.slots,
                     "%s: controller occupancy over slot limit",
                     name().c_str());
        ++issuedCount;
        // The issue decision itself costs scoreboard cycles.
        schedule(timing.cycles(timing.scoreboardIssueCycles),
                 [this, id, dev] {
                     auto it = entries.find(id);
                     if (it == entries.end())
                         panic("%s: issued entry vanished", name().c_str());
                     controllers[static_cast<int>(dev)].issue(it->second);
                 });
    }
}

void
Scoreboard::setEntryLen(std::uint32_t id, std::uint64_t len)
{
    auto it = entries.find(id);
    if (it == entries.end())
        panic("%s: setEntryLen on unknown entry %u", name().c_str(), id);
    if (it->second.state == EntryState::Issued ||
        it->second.state == EntryState::Done)
        panic("%s: setEntryLen after issue of entry %u", name().c_str(),
              id);
    it->second.len = len;
}

void
Scoreboard::complete(std::uint32_t id)
{
    auto it = entries.find(id);
    if (it == entries.end())
        panic("%s: completion for unknown entry %u", name().c_str(), id);
    Entry &e = it->second;
    if (e.state != EntryState::Issued)
        panic("%s: completing entry %u in state %d", name().c_str(), id,
              static_cast<int>(e.state));
    e.state = EntryState::Done;
    TRACE_SPAN_END(tracer(), now(), name(),
                   execName[static_cast<int>(e.dev)], id);

    Controller &c = controllers[static_cast<int>(e.dev)];
    --c.inUse;
    DCS_CHECK_GE(c.inUse, 0, "%s: controller occupancy went negative",
                 name().c_str());
    // The slot is free *now*: entries already sitting in the ready
    // queue must not stall for the completion-bookkeeping window.
    // Dependent wakeup still happens at retire time below.
    tryIssue(e.dev);

    schedule(timing.cycles(timing.scoreboardCompleteCycles), [this, id] {
        auto it2 = entries.find(id);
        if (it2 == entries.end())
            return;
        DCS_INVARIANT(it2->second.state == EntryState::Done,
                      "%s: retiring entry %u in state %d", name().c_str(),
                      id, static_cast<int>(it2->second.state));
        Entry done = std::move(it2->second);
        entries.erase(it2);
        TRACE_FLOW(tracer(), now(), name(), "retire", done.flow);

        // Wake dependents.
        for (std::uint32_t dep_id : done.dependents) {
            auto dit = entries.find(dep_id);
            if (dit == entries.end())
                continue;
            if (--dit->second.pendingDeps == 0 &&
                dit->second.state == EntryState::Wait)
                makeReady(dep_id);
        }

        // Command-level completion tracking.
        auto rit = remainingPerCmd.find(done.cmdId);
        if (rit == remainingPerCmd.end())
            panic("%s: entry for undeclared command %u", name().c_str(),
                  done.cmdId);
        if (--rit->second == 0) {
            remainingPerCmd.erase(rit);
            if (onCommandDone)
                onCommandDone(done.cmdId);
        }
    });
}

Scoreboard::ClassState
Scoreboard::classState(DevClass dev) const
{
    const Controller &c = controllers[static_cast<int>(dev)];
    return {c.readyQueue.size(), c.inUse, c.slots};
}

std::array<std::size_t, 4>
Scoreboard::stateCounts() const
{
    std::array<std::size_t, 4> counts{};
    // Order-independent accumulation. dcslint: allow(nondet-iteration): per-state counters commute
    for (const auto &[id, e] : entries)
        ++counts[static_cast<std::size_t>(e.state)];
    return counts;
}

} // namespace hdc
} // namespace dcs
