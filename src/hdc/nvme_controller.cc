#include "hdc/nvme_controller.hh"

#include <cstring>

#include "hdc/hdc_engine.hh"
#include "nvme/nvme_defs.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdc {

HdcNvmeController::HdcNvmeController(HdcEngine &engine,
                                     const HdcTiming &timing)
    : engine(engine), timing(timing), track(engine.name() + ".nvmec")
{
}

void
HdcNvmeController::configure(Addr ssd_bar0, std::uint16_t qid_,
                             std::uint16_t qdepth_, std::uint64_t sq_off,
                             std::uint64_t cq_off, std::uint64_t prp_off,
                             std::uint64_t prp_slot_bytes)
{
    ssdBar0 = ssd_bar0;
    qid = qid_;
    qdepth = qdepth_;
    sqOff = sq_off;
    cqOff = cq_off;
    prpOff = prp_off;
    prpSlotBytes = prp_slot_bytes;

    const auto &p = engine.params();
    auto defer = [this](Tick d, std::function<void()> fn) {
        engine.schedule(d, std::move(fn));
    };
    sqDb.configure(
        p.doorbellBatch, p.doorbellHoldoff,
        [this](std::uint32_t tail, std::uint64_t flow) {
            TRACE_FLOW(engine.tracer(), engine.now(), track,
                       "sq_doorbell", flow);
            engine.engMmioWrite(ssdBar0 + nvme::sqDoorbell(qid), tail, 4);
        },
        defer);
    cqDb.configure(
        p.doorbellBatch, p.doorbellHoldoff,
        [this](std::uint32_t head, std::uint64_t) {
            engine.engMmioWrite(ssdBar0 + nvme::cqDoorbell(qid), head, 4);
        },
        defer);
    configured = true;
}

void
HdcNvmeController::issue(const Entry &e)
{
    if (!configured)
        panic("hdc.nvme: issue before configure");
    // The scoreboard's class-wide slot cap spans all controllers, so
    // one controller can momentarily be offered more commands than
    // its SQ ring holds; hold the excess until completions free slots.
    if (cidToEntry.size() + 1 >= qdepth) {
        backlog.push_back(e);
        return;
    }
    submit(e);
}

void
HdcNvmeController::submit(const Entry &e)
{
    const std::uint16_t cid = nextCid++;
    cidToEntry[cid] = Inflight{e.id, e.flow, engine.now()};
    ++issued;
    // Let the SSD stamp its media spans and MSI with our request's
    // flow id: both sides can compute the (bar0, qid, cid) key.
    if (e.flow != 0)
        engine.tracer().bindFlow(nvme::traceFlowKey(ssdBar0, qid, cid),
                                 e.flow);

    // Build the SQE in hardware (costs build cycles), place it in the
    // BRAM SQ, then ring the SSD's tail doorbell over PCIe P2P.
    nvme::SqEntry sqe{};
    sqe.cid = cid;
    sqe.nsid = 1;
    const std::uint64_t lba = e.write ? e.dst : e.src;
    const std::uint64_t dram_off = e.write ? e.src : e.dst;
    const std::uint32_t nblocks = static_cast<std::uint32_t>(
        (e.len + nvme::lbaSize - 1) / nvme::lbaSize);
    sqe.opcode = static_cast<std::uint8_t>(e.write ? nvme::IoOp::Write
                                                   : nvme::IoOp::Read);
    sqe.cdw10 = static_cast<std::uint32_t>(lba);
    sqe.cdw11 = static_cast<std::uint32_t>(lba >> 32);
    sqe.cdw12 = nblocks - 1;

    // PRPs point into engine DRAM (bus addresses).
    const Addr data = engine.dramBus(dram_off);
    const std::uint64_t pages =
        (std::uint64_t(nblocks) * nvme::lbaSize + nvme::pageSize - 1) /
        nvme::pageSize;
    sqe.prp1 = data;
    if (pages == 2) {
        sqe.prp2 = data + nvme::pageSize;
    } else if (pages > 2) {
        const std::uint64_t slot =
            prpOff + std::uint64_t(sqTail) * prpSlotBytes;
        std::vector<std::uint64_t> list;
        for (std::uint64_t p = 1; p < pages; ++p)
            list.push_back(data + p * nvme::pageSize);
        if (list.size() * 8 > prpSlotBytes)
            panic("hdc.nvme: PRP list exceeds slot (chunk too large)");
        engine.bram().write(slot, list.data(), list.size() * 8);
        sqe.prp2 = engine.bramBus(slot);
    }

    const std::uint64_t sq_slot =
        sqOff + std::uint64_t(sqTail) * sizeof(nvme::SqEntry);
    engine.bram().write(sq_slot, &sqe, sizeof(sqe));
    sqTail = static_cast<std::uint16_t>((sqTail + 1) % qdepth);

    engine.schedule(timing.cycles(timing.nvmeCmdBuildCycles),
                    [this, tail = sqTail, flow = e.flow] {
                        sqDb.post(tail, flow);
                    });
}

void
HdcNvmeController::onBramWrite(std::uint64_t bram_off, std::uint64_t len)
{
    // React only to writes that land in our CQ region.
    const std::uint64_t cq_size =
        std::uint64_t(qdepth) * sizeof(nvme::CqEntry);
    if (!configured || bram_off < cqOff || bram_off >= cqOff + cq_size)
        return;
    (void)len;
    pumpCq();
}

void
HdcNvmeController::pumpCq()
{
    for (;;) {
        nvme::CqEntry cqe;
        engine.bram().read(cqOff +
                               std::uint64_t(cqHead) * sizeof(nvme::CqEntry),
                           &cqe, sizeof(cqe));
        if (((cqe.statusPhase & 1) != 0) != cqPhase)
            return;
        cqHead = static_cast<std::uint16_t>((cqHead + 1) % qdepth);
        if (cqHead == 0)
            cqPhase = !cqPhase;

        const std::uint16_t status = cqe.statusPhase >> 1;
        if (status != 0)
            panic("hdc.nvme: device returned error status %u", status);

        const Inflight *inf = cidToEntry.find(cqe.cid);
        if (!inf)
            panic("hdc.nvme: completion for unknown cid %u", cqe.cid);
        const std::uint32_t entry_id = inf->entry;
        TRACE_SPAN(engine.tracer(), inf->submitted,
                   engine.now() - inf->submitted, track, "io",
                   inf->flow);
        engine.tracer().unbindFlow(
            nvme::traceFlowKey(ssdBar0, qid, cqe.cid));
        cidToEntry.erase(cqe.cid);

        // Completion handling cost, then CQ head doorbell + notify.
        engine.schedule(timing.cycles(timing.nvmeCplCycles),
                        [this, entry_id, head = cqHead] {
                            cqDb.post(head, 0);
                            if (onComplete)
                                onComplete(entry_id);
                            while (!backlog.empty() &&
                                   cidToEntry.size() + 1 < qdepth) {
                                const Entry next = backlog.front();
                                backlog.pop_front();
                                submit(next);
                            }
                        });
    }
}

} // namespace hdc
} // namespace dcs
