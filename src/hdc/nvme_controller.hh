/**
 * @file
 * HDC Engine's standard NVMe device controller (paper Fig. 7a).
 *
 * Owns a dedicated NVMe queue pair placed in HDC BRAM (created on its
 * behalf by the extended host driver), builds NVMe commands in
 * hardware, rings the SSD's doorbell registers over PCIe P2P, and
 * consumes completion entries the SSD DMA-writes back into the BRAM
 * CQ — no host software anywhere on the path.
 */

#ifndef DCS_HDC_NVME_CONTROLLER_HH
#define DCS_HDC_NVME_CONTROLLER_HH

#include <cstdint>
#include <functional>

#include "hdc/scoreboard.hh"
#include "hdc/timing.hh"
#include "mem/addr_range.hh"
#include "pcie/doorbell.hh"
#include "sim/probe_map.hh"
#include "sim/small_vec.hh"

namespace dcs {
namespace hdc {

class HdcEngine;

/** The in-engine NVMe submission path. */
class HdcNvmeController
{
  public:
    HdcNvmeController(HdcEngine &engine, const HdcTiming &timing);

    /**
     * Bind to the SSD queue pair the host driver dedicated to us.
     * @param ssd_bar0 SSD register BAR (for doorbells).
     * @param qid the IO queue id of the dedicated pair.
     * @param qdepth entries in SQ/CQ.
     * @param sq_bram_off / cq_bram_off queue locations in engine BRAM.
     * @param prp_bram_off arena for per-slot PRP lists.
     */
    void configure(Addr ssd_bar0, std::uint16_t qid, std::uint16_t qdepth,
                   std::uint64_t sq_bram_off, std::uint64_t cq_bram_off,
                   std::uint64_t prp_bram_off,
                   std::uint64_t prp_slot_bytes);

    /**
     * Execute a scoreboard entry: read (LBA src -> DRAM dst) or write
     * (DRAM src -> LBA dst) of entry.len bytes.
     */
    void issue(const Entry &e);

    /** Engine forwards BRAM writes; we react to CQ slots. */
    void onBramWrite(std::uint64_t bram_off, std::uint64_t len);

    /** Completion notification to the scoreboard. */
    std::function<void(std::uint32_t entry_id)> onComplete;

    std::uint16_t queueDepth() const { return qdepth; }
    std::uint64_t commandsIssued() const { return issued; }
    /** NVMe commands submitted and not yet completed. */
    std::size_t inflightCount() const { return cidToEntry.size(); }
    /** Entries parked waiting for a free SQ slot. */
    std::size_t backlogDepth() const { return backlog.size(); }

    /** Actual SQ-tail + CQ-head doorbell MMIO writes performed. */
    std::uint64_t
    doorbellWrites() const
    {
        return sqDb.mmioWrites() + cqDb.mmioWrites();
    }

  private:
    void pumpCq();

    HdcEngine &engine;
    const HdcTiming &timing;

    Addr ssdBar0 = 0;
    std::uint16_t qid = 0;
    std::uint16_t qdepth = 0;
    std::uint64_t sqOff = 0, cqOff = 0, prpOff = 0;
    std::uint64_t prpSlotBytes = 128;

    /** Entries accepted while the SQ ring is full. */
    RingDeque<Entry> backlog;
    void submit(const Entry &e);

    std::uint16_t sqTail = 0;
    std::uint16_t cqHead = 0;
    bool cqPhase = true;
    std::uint16_t nextCid = 0;

    /** Outstanding NVMe command: scoreboard entry + trace context.
     *  Keyed by the wire cid: cids are monotonic 16-bit, and with at
     *  most qdepth-1 outstanding no two inflight cids can alias, so a
     *  point-lookup table needs no generation check. ProbeMap keeps
     *  the lookup O(1) and allocation-free at steady state. */
    struct Inflight
    {
        std::uint32_t entry = 0;
        std::uint64_t flow = 0;
        Tick submitted = 0;
    };
    ProbeMap<std::uint16_t, Inflight> cidToEntry;
    std::uint64_t issued = 0;
    pcie::DoorbellBatcher sqDb; //!< SQ tail doorbell
    pcie::DoorbellBatcher cqDb; //!< CQ head doorbell
    bool configured = false;
    std::string track; //!< span-tracer track (stable storage)
};

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_NVME_CONTROLLER_HH
