/**
 * @file
 * The D2D command: what HDC Driver forwards to HDC Engine.
 *
 * A single 64-byte record per multi-device task, written by the
 * driver into the engine's 64-entry command queue (paper §IV-C).
 * Large or fragmented transfers reference an extent list that the
 * engine fetches from host DRAM by DMA.
 */

#ifndef DCS_HDC_D2D_COMMAND_HH
#define DCS_HDC_D2D_COMMAND_HH

#include <cstdint>

#include "mem/addr_range.hh"

namespace dcs {
namespace hdc {

/** Endpoint kinds a D2D command can name. */
enum class Endpoint : std::uint8_t
{
    None = 0,
    Ssd,       //!< NVMe SSD blocks (addr = LBA, via extent list)
    Nic,       //!< TCP flow (addr = connection id)
    HdcBuffer, //!< HDC on-board DRAM (addr = byte offset)
    HostMem,   //!< host DRAM bus address (for staging scenarios)
};

/** Flag bits in D2dCommand::flags. */
namespace d2dflags {
constexpr std::uint8_t wantDigest = 0x1; //!< return digest to result slot
}

/** Wire format of one D2D command (64 bytes). */
struct D2dCommand
{
    std::uint32_t id = 0;          //!< driver-assigned unique id
    std::uint8_t srcDev = 0;       //!< Endpoint
    std::uint8_t dstDev = 0;       //!< Endpoint
    std::uint8_t fn = 0;           //!< ndp::Function between src and dst
    std::uint8_t flags = 0;
    std::uint64_t srcAddr = 0;     //!< LBA / conn id / byte offset
    std::uint64_t dstAddr = 0;
    std::uint64_t len = 0;         //!< payload bytes
    std::uint32_t srcExtents = 0;  //!< #extents in src list (0 = contig)
    std::uint32_t dstExtents = 0;
    std::uint64_t extListAddr = 0; //!< bus address of extent list
    std::uint64_t auxAddr = 0;     //!< bus address of aux (e.g. AES key)
    std::uint32_t auxLen = 0;
    std::uint8_t srcDevIdx = 0;    //!< which SSD when srcDev == Ssd
    std::uint8_t dstDevIdx = 0;    //!< which SSD when dstDev == Ssd
    std::uint16_t rsvd = 0;
};
static_assert(sizeof(D2dCommand) == 64, "D2D command must be 64 bytes");

/** One extent-list record: (LBA, block count) pairs, 16 bytes each. */
struct ExtentRec
{
    std::uint64_t lba = 0;
    std::uint64_t blocks = 0;
};
static_assert(sizeof(ExtentRec) == 16, "ExtentRec must be 16 bytes");

} // namespace hdc
} // namespace dcs

#endif // DCS_HDC_D2D_COMMAND_HH
