/**
 * @file
 * Host-side NIC driver model (optimized kernel path).
 *
 * Rings live in host DRAM; the driver posts receive buffers, builds
 * header templates + send descriptors, and processes completions off
 * MSIs — charging CPU for each step. Used by both baseline designs;
 * the DCS-ctrl design replaces this control path with the HDC
 * Engine's NIC controller.
 */

#ifndef DCS_HOST_NIC_DRIVER_HH
#define DCS_HOST_NIC_DRIVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "host/host.hh"
#include "host/trace.hh"
#include "nic/nic.hh"
#include "pcie/doorbell.hh"

namespace dcs {
namespace host {

/** Kernel NIC driver bound to one NIC. */
class NicHostDriver : public SimObject
{
  public:
    /** Frames handed up the stack (shared views, ownership moved). */
    using RxHandler = std::function<void(BufChain)>;

    NicHostDriver(EventQueue &eq, Host &host, nic::Nic &nic,
                  std::uint32_t ring_entries = 256,
                  std::uint32_t rx_buf_size = 9216);

    /** Program rings, post all receive buffers. @p done when live. */
    void init(std::function<void()> done);

    /**
     * Transmit @p len payload bytes at bus address @p payload on
     * flow @p flow (LSO: the NIC segments). @p done fires when the
     * driver has processed the send completion.
     */
    void sendSegment(const net::FlowInfo &flow, Addr payload,
                     std::uint32_t len, std::uint32_t mss, TracePtr trace,
                     std::function<void()> done);

    void setRxHandler(RxHandler h) { rxHandler = std::move(h); }

    bool ready() const { return _ready; }

    /**
     * Batch the send and receive doorbells: one MMIO per @p max
     * descriptor posts or @p holdoff window, whichever first
     * (0 = ring per post, the legacy behavior). The receive side
     * benefits most — the legacy path rings once per arriving frame.
     */
    void setDoorbellBatch(std::uint32_t max, Tick holdoff);

    /** Actual send + receive doorbell MMIO writes performed. */
    std::uint64_t
    doorbellWrites() const
    {
        return sendDb.mmioWrites() + recvDb.mmioWrites();
    }

  private:
    void onSendMsi();
    void onRecvMsi();
    void postRecvBuffer(std::uint32_t slot);

    Host &host;
    nic::Nic &nic;
    std::uint32_t entries;
    std::uint32_t rxBufSize;

    Addr sendRing = 0, sendCplRing = 0, recvRing = 0, recvCplRing = 0;
    Addr hdrArena = 0, rxArena = 0;

    std::uint32_t sendPidx = 0;
    std::uint32_t sendCplCidx = 0;
    std::uint32_t recvPidx = 0;
    std::uint32_t recvCplCidx = 0;

    struct PendingSend
    {
        TracePtr trace;
        std::function<void()> done;
        Tick submitted = 0;
    };
    std::unordered_map<std::uint32_t, PendingSend> inflightSends;

    RxHandler rxHandler;
    pcie::DoorbellBatcher sendDb; //!< send-ring pidx doorbell
    pcie::DoorbellBatcher recvDb; //!< recv-ring pidx doorbell
    bool _ready = false;
};

} // namespace host
} // namespace dcs

#endif // DCS_HOST_NIC_DRIVER_HH
