/**
 * @file
 * Per-request latency attribution.
 *
 * Each datapath request carries a shared LatencyTrace; every stage —
 * software routine, device control action, media access, NDP/GPU
 * compute — records the time it contributed under one LatComp. The
 * benches average these across requests to regenerate the paper's
 * stacked-bar latency figures (Fig. 3a, Fig. 11a/b).
 */

#ifndef DCS_HOST_TRACE_HH
#define DCS_HOST_TRACE_HH

#include <memory>

#include "host/categories.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dcs {
namespace host {

/** Accumulates component-attributed time for one request. */
class LatencyTrace
{
  public:
    void
    add(LatComp c, Tick t)
    {
        parts.add(c, static_cast<double>(t));
    }

    double get(LatComp c) const { return parts.get(c); }
    double total() const { return parts.total(); }

    /** Merge another trace (e.g. per-chunk sub-traces). */
    void
    merge(const LatencyTrace &o)
    {
        for (std::size_t i = 0; i < decltype(parts)::size(); ++i)
            parts.add(static_cast<LatComp>(i),
                      o.parts.get(static_cast<LatComp>(i)));
        // Request identity propagates upward: a parent trace created
        // before the tracer assigned a flow adopts the sub-trace's.
        if (flow == 0)
            flow = o.flow;
    }

    /**
     * Span-tracer flow id of the request this trace belongs to
     * (sim/tracing.hh); 0 when tracing is off. Riding on the
     * LatencyTrace threads request identity through the whole
     * datapath — host drivers, TCP, page cache — without touching
     * any signatures.
     */
    std::uint64_t flow = 0;

  private:
    stats::Breakdown<LatComp> parts;
};

using TracePtr = std::shared_ptr<LatencyTrace>;

/** Convenience: a fresh trace. */
inline TracePtr
makeTrace()
{
    return std::make_shared<LatencyTrace>();
}

} // namespace host
} // namespace dcs

#endif // DCS_HOST_TRACE_HH
