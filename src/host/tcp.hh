/**
 * @file
 * Minimal in-kernel TCP connection layer.
 *
 * Tracks established connections (the paper's experiments run over
 * pre-established flows), performs protocol/socket-buffer cost
 * accounting on send, and reassembles in-order payload bytes on
 * receive. HDC Driver queries this layer for a socket's FlowInfo —
 * "TCP/IP connection information" retrieved from the kernel (paper
 * §IV-B) — so the HDC Engine can frame packets itself.
 */

#ifndef DCS_HOST_TCP_HH
#define DCS_HOST_TCP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "host/flow_index.hh"
#include "host/host.hh"
#include "host/nic_driver.hh"
#include "host/trace.hh"
#include "net/packet.hh"

namespace dcs {
namespace host {

/** One established TCP connection. */
struct Connection
{
    int fd = -1;
    net::FlowInfo out;        //!< template for outgoing segments
    std::uint32_t nextRxSeq = 0;
    bool permitted = true;    //!< security-model check for D2D use

    /** In-order payload delivery (seq, shared payload view). */
    std::function<void(std::uint32_t seq, BufChain)> onPayload;
};

/** The host's TCP layer bound to one NIC driver. */
class TcpStack : public SimObject
{
  public:
    TcpStack(EventQueue &eq, Host &host, NicHostDriver &nic_driver);

    /**
     * Install an established connection (simulation-level handshake).
     * @param out outgoing flow template (seq = initial send seq).
     * @param first_rx_seq expected first sequence from the peer.
     */
    Connection &establish(net::FlowInfo out, std::uint32_t first_rx_seq);

    Connection *findByFd(int fd);
    const Connection *findByFd(int fd) const;

    /**
     * Tear down a connection. In-flight sends on @p fd abort quietly
     * (their completion callbacks never fire); a duplicate flow key
     * waiting behind this connection takes over receive demux.
     * @return false if @p fd is not an open connection.
     */
    bool close(int fd);

    /**
     * Kernel send path: socket-buffer + protocol costs, then the NIC
     * driver transmits @p len bytes at bus address @p payload. The
     * continuation re-resolves the connection by fd at every stage,
     * so closing mid-send is safe (the rest of the write is dropped).
     */
    void send(Connection &conn, Addr payload, std::uint32_t len,
              std::uint32_t mss, TracePtr trace,
              std::function<void()> done);

    /** Total payload bytes delivered up from the wire. */
    std::uint64_t bytesReceived() const { return rxBytes; }

    /** Frames that matched no connection (dropped). */
    std::uint64_t framesUnmatched() const { return rxUnmatched; }

    /** Open connections. */
    std::size_t connectionCount() const { return conns.size(); }

  private:
    static FlowKey keyOf(const Connection &c);

    void onFrame(BufChain frame);
    void sendFd(int fd, Addr payload, std::uint32_t len,
                std::uint32_t mss, TracePtr trace,
                std::function<void()> done);

    Host &host;
    NicHostDriver &nicDriver;
    std::map<int, std::unique_ptr<Connection>> conns;
    /** flow key -> owning fd; earliest-established connection wins
     *  duplicate keys, deterministically (enforced at establish/close
     *  time — the index itself is point-lookup only, so per-frame
     *  demux is O(1) regardless of connection count). */
    FlowIndex demux;
    std::uint64_t rxBytes = 0;
    std::uint64_t txBytes = 0;
    std::uint64_t rxUnmatched = 0;
    std::uint64_t closedConns = 0;
};

/** Wire up a matched pair of connections across two nodes. */
struct ConnPairParams
{
    net::MacAddr macA{0x02, 0, 0, 0, 0, 0xaa};
    net::MacAddr macB{0x02, 0, 0, 0, 0, 0xbb};
    std::uint32_t ipA = net::ipv4(10, 0, 0, 1);
    std::uint32_t ipB = net::ipv4(10, 0, 0, 2);
    std::uint16_t portA = 40000;
    std::uint16_t portB = 8080;
    std::uint32_t seqA = 1000;
    std::uint32_t seqB = 5000;
};

/** Establish both ends of a connection; returns (endA, endB). */
std::pair<Connection *, Connection *>
establishPair(TcpStack &a, TcpStack &b, const ConnPairParams &p = {});

} // namespace host
} // namespace dcs

#endif // DCS_HOST_TCP_HH
