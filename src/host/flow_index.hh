/**
 * @file
 * O(1) receive-demux index for the host TCP layer.
 *
 * Maps the (local, remote) endpoint pair of an arriving frame to the
 * owning connection fd. Demux is a keyed point query — never an
 * iteration — so an open-addressing table is deterministic here: the
 * answer for a key does not depend on probe layout, and duplicate-key
 * policy (earliest-established fd wins) is enforced by the TcpStack,
 * not by container order.
 */

#ifndef DCS_HOST_FLOW_INDEX_HH
#define DCS_HOST_FLOW_INDEX_HH

#include <compare>
#include <cstdint>

#include "sim/probe_map.hh"

namespace dcs {
namespace host {

/** Endpoint pair as seen from the local stack. */
struct FlowKey
{
    std::uint32_t localIp = 0;
    std::uint32_t remoteIp = 0;
    std::uint16_t localPort = 0;
    std::uint16_t remotePort = 0;

    auto operator<=>(const FlowKey &o) const = default;
};

/** Well-mixed 64-bit hash over both endpoints. */
struct FlowKeyHash
{
    std::uint64_t
    operator()(const FlowKey &k) const
    {
        std::uint64_t h =
            mix64((std::uint64_t(k.localIp) << 32) | k.remoteIp);
        h = mix64(h ^ ((std::uint64_t(k.localPort) << 16) |
                       k.remotePort));
        return h;
    }
};

/** flow key -> owning fd. */
using FlowIndex = ProbeMap<FlowKey, int, FlowKeyHash>;

} // namespace host
} // namespace dcs

#endif // DCS_HOST_FLOW_INDEX_HH
