#include "host/nic_driver.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dcs {
namespace host {

NicHostDriver::NicHostDriver(EventQueue &eq, Host &host, nic::Nic &nic,
                             std::uint32_t ring_entries,
                             std::uint32_t rx_buf_size)
    : SimObject(eq, nic.name() + ".hostdrv"), host(host), nic(nic),
      entries(ring_entries), rxBufSize(rx_buf_size)
{
    setDoorbellBatch(0, 0);
}

void
NicHostDriver::setDoorbellBatch(std::uint32_t max, Tick holdoff)
{
    auto defer = [this](Tick d, std::function<void()> fn) {
        schedule(d, std::move(fn));
    };
    sendDb.configure(
        max, holdoff,
        [this](std::uint32_t pidx, std::uint64_t) {
            host.fabric().memWriteScalar(
                host.bridge(), nic.bar0() + nic::reg::sendDoorbell, pidx,
                4, {});
        },
        defer);
    recvDb.configure(
        max, holdoff,
        [this](std::uint32_t pidx, std::uint64_t) {
            host.fabric().memWriteScalar(
                host.bridge(), nic.bar0() + nic::reg::recvDoorbell, pidx,
                4, {});
        },
        defer);
}

void
NicHostDriver::init(std::function<void()> done)
{
    sendRing = host.allocDma(std::uint64_t(entries) * sizeof(nic::SendDesc));
    sendCplRing =
        host.allocDma(std::uint64_t(entries) * sizeof(nic::CplEntry));
    recvRing = host.allocDma(std::uint64_t(entries) * sizeof(nic::RecvDesc));
    recvCplRing =
        host.allocDma(std::uint64_t(entries) * sizeof(nic::CplEntry));
    hdrArena = host.allocDma(std::uint64_t(entries) * 64);
    rxArena = host.allocDma(std::uint64_t(entries) * rxBufSize);

    const std::uint16_t send_vec = host.allocMsiVector();
    const std::uint16_t recv_vec = host.allocMsiVector();
    host.bridge().registerMsi(send_vec,
                              [this](std::uint16_t, std::uint32_t) {
                                  onSendMsi();
                              });
    host.bridge().registerMsi(recv_vec,
                              [this](std::uint16_t, std::uint32_t) {
                                  onRecvMsi();
                              });

    // Register programming rides in scalar TLPs — no per-write
    // payload vectors.
    auto &fab = host.fabric();
    auto &br = host.bridge();
    const Addr b = nic.bar0();
    fab.memWriteScalar(br, b + nic::reg::sendRingBase, sendRing, 8, {});
    fab.memWriteScalar(br, b + nic::reg::sendRingSize, entries, 4, {});
    fab.memWriteScalar(br, b + nic::reg::sendCplBase, sendCplRing, 8, {});
    fab.memWriteScalar(br, b + nic::reg::recvRingBase, recvRing, 8, {});
    fab.memWriteScalar(br, b + nic::reg::recvRingSize, entries, 4, {});
    fab.memWriteScalar(br, b + nic::reg::recvCplBase, recvCplRing, 8, {});
    fab.memWriteScalar(br, b + nic::reg::msiSendAddr,
                       host.bridge().msiAddr(send_vec), 8, {});
    fab.memWriteScalar(br, b + nic::reg::msiRecvAddr,
                       host.bridge().msiAddr(recv_vec), 8, {});

    // Post every receive buffer.
    for (std::uint32_t i = 0; i < entries; ++i)
        postRecvBuffer(i);
    fab.memWriteScalar(br, b + nic::reg::recvDoorbell, recvPidx, 4,
                       [this, done] {
                           _ready = true;
                           if (done)
                               done();
                       });
}

void
NicHostDriver::postRecvBuffer(std::uint32_t slot)
{
    nic::RecvDesc d;
    d.bufAddr = rxArena + std::uint64_t(slot % entries) * rxBufSize;
    d.bufLen = rxBufSize;
    host.dram().write(host.dramOffset(recvRing) +
                          std::uint64_t(slot % entries) *
                              sizeof(nic::RecvDesc),
                      &d, sizeof(d));
    ++recvPidx;
}

void
NicHostDriver::sendSegment(const net::FlowInfo &flow, Addr payload,
                           std::uint32_t len, std::uint32_t mss,
                           TracePtr trace, std::function<void()> done)
{
    if (!_ready)
        panic("%s: send before init", name().c_str());
    if (inflightSends.size() + 2 >= entries)
        panic("%s: send ring oversubscribed", name().c_str());

    const Tick t0 = now();
    // Driver-side work: header template + descriptor + doorbell.
    host.cpu().run(
        CpuCat::DeviceControl, host.costs().nicSubmit,
        [this, flow, payload, len, mss, trace, t0,
         done = std::move(done)]() mutable {
            if (trace)
                trace->add(LatComp::NetworkStack, now() - t0);
            const std::uint32_t index = sendPidx % entries;

            // Header template (checksums recomputed per segment by LSO).
            const auto hdr = net::buildHeaders(
                flow, std::span<const std::uint8_t>{}, 0);
            const Addr hdr_slot = hdrArena + std::uint64_t(index) * 64;
            host.dram().write(host.dramOffset(hdr_slot), hdr.data(),
                              hdr.size());

            nic::SendDesc desc;
            desc.hdrAddr = hdr_slot;
            desc.hdrLen = net::fullHeaderLen;
            desc.payloadAddr = payload;
            desc.payloadLen = len;
            desc.flags = 1; // LSO
            desc.mss = mss;
            host.dram().write(host.dramOffset(sendRing) +
                                  std::uint64_t(index) *
                                      sizeof(nic::SendDesc),
                              &desc, sizeof(desc));

            inflightSends[index] =
                PendingSend{trace, std::move(done), now()};
            TRACE_SPAN_BEGIN(tracer(), now(), name(), "send", index,
                             trace ? trace->flow : 0);
            ++sendPidx;
            TRACE_FLOW(tracer(), now(), name(), "db_post",
                       trace ? trace->flow : 0);
            sendDb.post(sendPidx, 0);
        });
}

void
NicHostDriver::onSendMsi()
{
    const Tick t_irq = now();
    host.cpu().run(CpuCat::Interrupt, host.costs().irqEntry, [this, t_irq] {
        for (;;) {
            const std::uint32_t index = sendCplCidx % entries;
            nic::CplEntry e;
            host.dram().read(host.dramOffset(sendCplRing) +
                                 std::uint64_t(index) *
                                     sizeof(nic::CplEntry),
                             &e, sizeof(e));
            if (e.seqNo != sendCplCidx + 1)
                break; // slot not yet produced for this lap
            auto it = inflightSends.find(index);
            if (it == inflightSends.end())
                panic("%s: completion for untracked send slot %u",
                      name().c_str(), index);
            ++sendCplCidx;
            PendingSend p = std::move(it->second);
            inflightSends.erase(it);
            TRACE_SPAN_END(tracer(), now(), name(), "send", index);
            host.cpu().run(CpuCat::DeviceControl,
                           host.costs().nicComplete,
                           [this, p = std::move(p), t_irq] {
                               if (p.trace) {
                                   const Tick sent = p.submitted;
                                   if (t_irq > sent)
                                       p.trace->add(LatComp::NetworkSend,
                                                    t_irq - sent);
                                   p.trace->add(
                                       LatComp::RequestCompletion,
                                       now() - t_irq);
                               }
                               if (p.done)
                                   p.done();
                           });
        }
    });
}

void
NicHostDriver::onRecvMsi()
{
    host.cpu().run(CpuCat::Interrupt, host.costs().irqEntry, [this] {
        for (;;) {
            const std::uint32_t index = recvCplCidx % entries;
            nic::CplEntry e;
            host.dram().read(host.dramOffset(recvCplRing) +
                                 std::uint64_t(index) *
                                     sizeof(nic::CplEntry),
                             &e, sizeof(e));
            if (e.seqNo != recvCplCidx + 1)
                break; // slot not yet produced for this lap
            ++recvCplCidx;

            // Borrow the frame from the posted buffer (shared views;
            // re-posting is safe under Memory's copy-on-write).
            const Addr buf =
                rxArena + std::uint64_t(index) * rxBufSize;
            BufChain frame =
                host.dram().borrow(host.dramOffset(buf), e.value);
            // Re-post the buffer and notify the NIC.
            postRecvBuffer(index);
            recvDb.post(recvPidx, 0);

            host.cpu().run(CpuCat::DeviceControl,
                           host.costs().nicComplete,
                           [this, frame = std::move(frame)]() mutable {
                               if (rxHandler)
                                   rxHandler(std::move(frame));
                           });
        }
    });
}

} // namespace host
} // namespace dcs
