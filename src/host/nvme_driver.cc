#include "host/nvme_driver.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dcs {
namespace host {

NvmeHostDriver::NvmeHostDriver(EventQueue &eq, Host &host,
                               nvme::NvmeSsd &ssd,
                               std::uint16_t queue_depth)
    : SimObject(eq, ssd.name() + ".hostdrv"), host(host), ssd(ssd),
      qdepth(queue_depth)
{
    setDoorbellBatch(0, 0);
}

void
NvmeHostDriver::setDoorbellBatch(std::uint32_t max, Tick holdoff)
{
    sqDb.configure(
        max, holdoff,
        [this](std::uint32_t tail, std::uint64_t) {
            host.fabric().memWriteScalar(host.bridge(),
                                         ssd.bar0() + nvme::sqDoorbell(1),
                                         tail, 4, {});
        },
        [this](Tick d, std::function<void()> fn) {
            schedule(d, std::move(fn));
        });
}

void
NvmeHostDriver::init(std::function<void()> done)
{
    // Allocate queue memory in host DRAM.
    asqBase = host.allocDma(adminQSize * sizeof(nvme::SqEntry));
    acqBase = host.allocDma(adminQSize * sizeof(nvme::CqEntry));
    ioSqBase = host.allocDma(std::uint64_t(qdepth) * sizeof(nvme::SqEntry));
    ioCqBase = host.allocDma(std::uint64_t(qdepth) * sizeof(nvme::CqEntry));
    prpArena = host.allocDma(std::uint64_t(qdepth) * nvme::pageSize);

    const std::uint16_t admin_vec = host.allocMsiVector();
    const std::uint16_t io_vec = host.allocMsiVector();
    host.bridge().registerMsi(admin_vec,
                              [this](std::uint16_t, std::uint32_t) {
                                  onAdminMsi();
                              });
    host.bridge().registerMsi(io_vec, [this](std::uint16_t, std::uint32_t) {
        onIoMsi();
    });
    ssd.setMsiAddress(0, host.bridge().msiAddr(admin_vec));
    ssd.setMsiAddress(1, host.bridge().msiAddr(io_vec));

    // Program AQA/ASQ/ACQ then enable (each an MMIO write).
    auto &br = host.bridge();
    auto &fab = host.fabric();
    // Register programming rides in scalar TLPs — no per-write
    // payload vectors.
    const std::uint64_t aqa =
        (adminQSize - 1) | (std::uint64_t(adminQSize - 1) << 16);
    fab.memWriteScalar(br, ssd.bar0() + nvme::reg::aqa, aqa, 8, {});
    fab.memWriteScalar(br, ssd.bar0() + nvme::reg::asq, asqBase, 8, {});
    fab.memWriteScalar(br, ssd.bar0() + nvme::reg::acq, acqBase, 8, {});
    fab.memWriteScalar(br, ssd.bar0() + nvme::reg::cc, 1, 4, [this, done] {
                     // Create the IO completion queue, then the IO
                     // submission queue, then we are ready.
                     nvme::SqEntry cq{};
                     cq.opcode =
                         static_cast<std::uint8_t>(nvme::AdminOp::CreateIoCq);
                     cq.prp1 = ioCqBase;
                     cq.cdw10 = 1u | (std::uint32_t(qdepth - 1) << 16);
                     cq.cdw11 = 0x2 /* IEN */ | (1u << 16) /* IV=1 */ | 1;
                     adminSubmit(cq, [this, done] {
                         nvme::SqEntry sq{};
                         sq.opcode = static_cast<std::uint8_t>(
                             nvme::AdminOp::CreateIoSq);
                         sq.prp1 = ioSqBase;
                         sq.cdw10 = 1u | (std::uint32_t(qdepth - 1) << 16);
                         sq.cdw11 = 1 | (1u << 16); // PC, CQID=1
                         adminSubmit(sq, [this, done] {
                             _ready = true;
                             if (done)
                                 done();
                         });
                     });
                 });
}

void
NvmeHostDriver::adminSubmit(nvme::SqEntry sqe, std::function<void()> done)
{
    sqe.cid = nextCid++;
    host.dram().write(host.dramOffset(asqBase) +
                          std::uint64_t(adminTail) * sizeof(sqe),
                      &sqe, sizeof(sqe));
    adminTail = static_cast<std::uint16_t>((adminTail + 1) % adminQSize);
    adminWaiters.push_back(std::move(done));
    host.fabric().memWriteScalar(host.bridge(),
                                 ssd.bar0() + nvme::sqDoorbell(0),
                                 adminTail, 4, {});
}

void
NvmeHostDriver::onAdminMsi()
{
    // Admin completions are rare (bring-up only); charge minimal CPU.
    host.cpu().run(CpuCat::Interrupt, host.costs().irqEntry, [this] {
        // Consume all new CQ entries.
        for (;;) {
            nvme::CqEntry cqe;
            host.dram().read(host.dramOffset(acqBase) +
                                 std::uint64_t(adminCqHead) * sizeof(cqe),
                             &cqe, sizeof(cqe));
            const bool phase = (cqe.statusPhase & 1) != 0;
            if (phase != adminPhase)
                break;
            adminCqHead =
                static_cast<std::uint16_t>((adminCqHead + 1) % adminQSize);
            if (adminCqHead == 0)
                adminPhase = !adminPhase;
            if (adminWaiters.empty())
                panic("%s: unexpected admin completion", name().c_str());
            auto cb = std::move(adminWaiters.front());
            adminWaiters.pop_front();
            if (cb)
                cb();
        }
        // Ring the admin CQ head doorbell.
        host.fabric().memWriteScalar(host.bridge(),
                                     ssd.bar0() + nvme::cqDoorbell(0),
                                     adminCqHead, 4, {});
    });
}

void
NvmeHostDriver::createDedicatedQueuePair(std::uint16_t qid,
                                         std::uint16_t qdepth, Addr sq_bus,
                                         Addr cq_bus,
                                         std::function<void()> done)
{
    if (!_ready)
        panic("%s: createDedicatedQueuePair before init", name().c_str());
    nvme::SqEntry cq{};
    cq.opcode = static_cast<std::uint8_t>(nvme::AdminOp::CreateIoCq);
    cq.prp1 = cq_bus;
    cq.cdw10 = qid | (std::uint32_t(qdepth - 1) << 16);
    cq.cdw11 = 1; // physically contiguous, interrupts disabled
    adminSubmit(cq, [this, qid, qdepth, sq_bus, done = std::move(done)] {
        nvme::SqEntry sq{};
        sq.opcode = static_cast<std::uint8_t>(nvme::AdminOp::CreateIoSq);
        sq.prp1 = sq_bus;
        sq.cdw10 = qid | (std::uint32_t(qdepth - 1) << 16);
        sq.cdw11 = 1 | (std::uint32_t(qid) << 16); // CQID = qid
        adminSubmit(sq, [done = std::move(done)] {
            if (done)
                done();
        });
    });
}

void
NvmeHostDriver::fillPrps(nvme::SqEntry &sqe, Addr data,
                         std::uint32_t nblocks)
{
    const std::uint64_t pages =
        std::uint64_t(nblocks) * nvme::lbaSize / nvme::pageSize;
    sqe.prp1 = data;
    if (pages <= 1)
        return;
    if (pages == 2) {
        sqe.prp2 = data + nvme::pageSize;
        return;
    }
    // Build a PRP list in the per-command arena slot.
    const Addr list =
        prpArena + std::uint64_t(prpSlot % qdepth) * nvme::pageSize;
    ++prpSlot;
    std::vector<std::uint64_t> entries;
    for (std::uint64_t p = 1; p < pages; ++p)
        entries.push_back(data + p * nvme::pageSize);
    host.dram().write(host.dramOffset(list), entries.data(),
                      entries.size() * 8);
    sqe.prp2 = list;
}

void
NvmeHostDriver::submitIo(nvme::SqEntry sqe, TracePtr trace,
                         std::function<void()> done)
{
    if (!_ready)
        panic("%s: IO before init", name().c_str());
    sqe.cid = nextCid++;
    inflight[sqe.cid] = Pending{trace, std::move(done), now()};

    const std::uint64_t tflow = trace ? trace->flow : 0;
    TRACE_SPAN_BEGIN(tracer(), now(), name(), "io", sqe.cid, tflow);
    if (tflow != 0)
        tracer().bindFlow(nvme::traceFlowKey(ssd.bar0(), 1, sqe.cid),
                          tflow);

    // Driver submit cost: build SQE, PRPs, ring doorbell.
    const Tick cost = host.costs().nvmeSubmit;
    const Tick t0 = now();
    host.cpu().run(CpuCat::DeviceControl, cost, [this, sqe, trace, t0] {
        if (trace)
            trace->add(LatComp::DeviceControl, now() - t0);
        host.dram().write(host.dramOffset(ioSqBase) +
                              std::uint64_t(ioTail) * sizeof(sqe),
                          &sqe, sizeof(sqe));
        ioTail = static_cast<std::uint16_t>((ioTail + 1) % qdepth);
        TRACE_FLOW(tracer(), now(), name(), "db_post",
                   trace ? trace->flow : 0);
        sqDb.post(ioTail, 0);
    });
}

void
NvmeHostDriver::onIoMsi()
{
    const Tick t_irq = now();
    host.cpu().run(
        CpuCat::Interrupt, host.costs().irqEntry, [this, t_irq] {
            // Drain CQ entries; each costs completion-processing time.
            for (;;) {
                nvme::CqEntry cqe;
                host.dram().read(host.dramOffset(ioCqBase) +
                                     std::uint64_t(ioCqHead) * sizeof(cqe),
                                 &cqe, sizeof(cqe));
                if (((cqe.statusPhase & 1) != 0) != ioPhase)
                    break;
                ioCqHead =
                    static_cast<std::uint16_t>((ioCqHead + 1) % qdepth);
                if (ioCqHead == 0)
                    ioPhase = !ioPhase;

                auto it = inflight.find(cqe.cid);
                if (it == inflight.end())
                    panic("%s: completion for unknown cid %u",
                          name().c_str(), cqe.cid);
                Pending p = std::move(it->second);
                inflight.erase(it);
                TRACE_SPAN_END(tracer(), now(), name(), "io", cqe.cid);
                tracer().unbindFlow(
                    nvme::traceFlowKey(ssd.bar0(), 1, cqe.cid));
                const std::uint16_t status = cqe.statusPhase >> 1;
                if (status != 0)
                    panic("%s: NVMe error status %u", name().c_str(),
                          status);

                // Device time between end-of-submit and the IRQ is the
                // media read/write + DMA window.
                const Tick submit_end =
                    p.submitted + host.costs().nvmeSubmit;
                if (p.trace && t_irq > submit_end)
                    p.trace->add(LatComp::Read, t_irq - submit_end);

                host.cpu().run(CpuCat::DeviceControl,
                               host.costs().nvmeComplete,
                               [this, p = std::move(p), t_irq] {
                                   if (p.trace)
                                       p.trace->add(
                                           LatComp::RequestCompletion,
                                           now() - t_irq);
                                   if (p.done)
                                       p.done();
                               });
            }
            ++cqDoorbells;
            host.fabric().memWriteScalar(host.bridge(),
                                         ssd.bar0() + nvme::cqDoorbell(1),
                                         ioCqHead, 4, {});
        });
}

void
NvmeHostDriver::readBlocks(std::uint64_t slba, std::uint32_t nblocks,
                           Addr dst, TracePtr trace,
                           std::function<void()> done)
{
    nvme::SqEntry sqe{};
    sqe.opcode = static_cast<std::uint8_t>(nvme::IoOp::Read);
    sqe.nsid = 1;
    sqe.cdw10 = static_cast<std::uint32_t>(slba);
    sqe.cdw11 = static_cast<std::uint32_t>(slba >> 32);
    sqe.cdw12 = nblocks - 1;
    fillPrps(sqe, dst, nblocks);
    submitIo(sqe, std::move(trace), std::move(done));
}

void
NvmeHostDriver::writeBlocks(std::uint64_t slba, std::uint32_t nblocks,
                            Addr src, TracePtr trace,
                            std::function<void()> done)
{
    nvme::SqEntry sqe{};
    sqe.opcode = static_cast<std::uint8_t>(nvme::IoOp::Write);
    sqe.nsid = 1;
    sqe.cdw10 = static_cast<std::uint32_t>(slba);
    sqe.cdw11 = static_cast<std::uint32_t>(slba >> 32);
    sqe.cdw12 = nblocks - 1;
    fillPrps(sqe, src, nblocks);
    submitIo(sqe, std::move(trace), std::move(done));
}

} // namespace host
} // namespace dcs
