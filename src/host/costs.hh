/**
 * @file
 * Calibrated software-routine cost constants (DESIGN.md §5).
 *
 * These model the host-side CPU time of kernel routines on the
 * paper's testbed: a 2.3 GHz Xeon E5-2630 running CentOS 6.5 with a
 * 2.6.32-era kernel — noticeably heavier syscall/driver paths than a
 * modern stack, which is precisely why the paper's software designs
 * lose so much time to device control (Fig. 2/3). The absolute
 * values are order-of-magnitude calibrations; the experiments depend
 * on their *relative* structure (how much work each design removes),
 * which is architectural. The ablation bench sweeps the load-bearing
 * ones.
 */

#ifndef DCS_HOST_COSTS_HH
#define DCS_HOST_COSTS_HH

#include "sim/ticks.hh"

namespace dcs {
namespace host {

/** Per-routine CPU costs of the (optimized) kernel software stack. */
struct KernelCosts
{
    /** User/kernel boundary crossing (entry + exit of one syscall). */
    Tick syscall = nanoseconds(1500);

    /** VFS + extent/block-address lookup per request. */
    Tick vfsLookup = microseconds(3.0);

    /** Page-cache lookup/insert/management per 64 KiB of data. */
    Tick pageCachePer64k = microseconds(1.2);

    /** memcpy bandwidth for user<->kernel / staging copies (GB/s). */
    double copyGBps = 8.0;

    /** Socket-buffer management per send/recv operation. */
    Tick sockBufMgmt = microseconds(3.0);

    /** TCP/IP protocol processing per submitted send/recv batch. */
    Tick tcpProto = microseconds(2.5);

    /** NVMe driver: build SQE + ring doorbell. */
    Tick nvmeSubmit = microseconds(3.0);

    /** NVMe driver: completion handling (bottom half, CQ doorbell). */
    Tick nvmeComplete = microseconds(5.0);

    /** NIC driver: build descriptor + doorbell. */
    Tick nicSubmit = microseconds(2.5);

    /** NIC driver: send/recv completion processing. */
    Tick nicComplete = microseconds(4.0);

    /** Hard-IRQ entry/dispatch before the handler body. */
    Tick irqEntry = microseconds(2.5);

    /** GPU driver: kernel-launch ioctl path on the CPU. */
    Tick gpuLaunchCpu = microseconds(14.0);

    /** GPU driver: stream synchronize / completion polling. */
    Tick gpuSyncCpu = microseconds(10.0);

    /** GPU copy-engine programming per transfer. */
    Tick gpuCopySetup = microseconds(6.0);

    /** Effective cudaMemcpy bandwidth (GB/s) incl. pinning overheads. */
    double gpuCopyGBps = 6.0;

    /** HDC Driver: retrieve metadata, build + forward one D2D cmd. */
    Tick hdcSubmit = microseconds(4.5);

    /** HDC Driver: completion IRQ handling + user wakeup. */
    Tick hdcComplete = microseconds(4.0);

    /** CPU-side hash/checksum throughput (GB/s), when not offloaded. */
    double cpuHashGBps = 2.0;

    /** Application-level request handling (parse REST, bookkeeping). */
    Tick appRequestWork = microseconds(5.0);
};

/** Copy time of @p bytes at @p gbytes_per_s, rounded up. */
constexpr Tick
copyTime(std::uint64_t bytes, double gbytes_per_s)
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             (gbytes_per_s * 1e9) * 1e12) +
           1;
}

} // namespace host
} // namespace dcs

#endif // DCS_HOST_COSTS_HH
