#include "host/host.hh"

#include "sim/logging.hh"

namespace dcs {
namespace host {

Host::Host(EventQueue &eq, std::string name, pcie::Fabric &fabric,
           HostParams p)
    : SimObject(eq, std::move(name)), _fabric(fabric), _params(p),
      // 4 KiB pages: device DMA lands page-granular (NVMe PRPs), so
      // adopt() can install whole pages without copying.
      _dram(p.dramBytes, this->name() + ".dram", 12)
{
    _bridge = std::make_unique<pcie::HostBridge>(
        eq, this->name() + ".bridge", _dram, p.dramBase, p.msiBase);
    _cpu = std::make_unique<CpuSet>(eq, this->name() + ".cpu", p.cores);
    fabric.attach(*_bridge);
}

Addr
Host::allocDma(std::uint64_t size, std::uint64_t align)
{
    dmaBump = (dmaBump + align - 1) & ~(align - 1);
    if (dmaBump + size > _dram.size())
        fatal("%s: host DMA arena exhausted", name().c_str());
    const Addr bus = _params.dramBase + dmaBump;
    dmaBump += size;
    return bus;
}

} // namespace host
} // namespace dcs
