#include "host/categories.hh"

#include "sim/logging.hh"

namespace dcs {
namespace host {

const char *
cpuCatName(CpuCat c)
{
    switch (c) {
      case CpuCat::User:
        return "user";
      case CpuCat::FileSystem:
        return "filesystem";
      case CpuCat::PageCache:
        return "page-cache";
      case CpuCat::DataCopy:
        return "data-copy";
      case CpuCat::SocketBuffer:
        return "socket-buffer";
      case CpuCat::NetworkProto:
        return "network-proto";
      case CpuCat::DeviceControl:
        return "device-control";
      case CpuCat::Interrupt:
        return "interrupt";
      case CpuCat::GpuControl:
        return "gpu-control";
      case CpuCat::GpuCopy:
        return "gpu-copy";
      case CpuCat::HashCompute:
        return "hash-compute";
      case CpuCat::HdcDriver:
        return "hdc-driver";
      case CpuCat::NumCategories:
        break;
    }
    panic("bad CpuCat");
}

const char *
latCompName(LatComp c)
{
    switch (c) {
      case LatComp::FileSystem:
        return "file-system";
      case LatComp::DeviceControl:
        return "device-control";
      case LatComp::Read:
        return "read";
      case LatComp::RequestCompletion:
        return "request-completion";
      case LatComp::NetworkStack:
        return "network-stack";
      case LatComp::NetworkSend:
        return "network-send";
      case LatComp::Hash:
        return "hash";
      case LatComp::GpuControl:
        return "gpu-control";
      case LatComp::GpuCopy:
        return "gpu-copy";
      case LatComp::DataCopy:
        return "data-copy";
      case LatComp::Scoreboard:
        return "scoreboard";
      case LatComp::Other:
        return "other";
      case LatComp::NumCategories:
        break;
    }
    panic("bad LatComp");
}

} // namespace host
} // namespace dcs
