/**
 * @file
 * The host system: DRAM, root complex, CPU cores, kernel costs.
 *
 * One Host per node. Hosts initiate MMIO/DMA through their HostBridge
 * (the root port on the PCIe fabric) and receive device MSIs through
 * it. DMA-able buffers (queues, staging buffers, packet buffers) are
 * carved from host DRAM with a bump allocator.
 */

#ifndef DCS_HOST_HOST_HH
#define DCS_HOST_HOST_HH

#include <cstdint>
#include <memory>

#include "host/costs.hh"
#include "host/cpu.hh"
#include "mem/memory.hh"
#include "pcie/fabric.hh"
#include "pcie/host_bridge.hh"

namespace dcs {
namespace host {

/** Host configuration. */
struct HostParams
{
    int cores = 6;                       //!< Xeon E5-2630: 6 cores
    std::uint64_t dramBytes = 8ull << 30;
    Addr dramBase = 0x100000000ull;      //!< bus address of DRAM window
    Addr msiBase = 0xfee00000ull;        //!< MSI doorbell window
    KernelCosts costs{};
};

/** A server node's host side. */
class Host : public SimObject
{
  public:
    Host(EventQueue &eq, std::string name, pcie::Fabric &fabric,
         HostParams p = {});

    Memory &dram() { return _dram; }
    pcie::HostBridge &bridge() { return *_bridge; }
    CpuSet &cpu() { return *_cpu; }
    const KernelCosts &costs() const { return _params.costs; }
    KernelCosts &mutableCosts() { return _params.costs; }
    pcie::Fabric &fabric() { return _fabric; }

    /** Allocate a DMA-able region of host DRAM; returns bus address. */
    Addr allocDma(std::uint64_t size, std::uint64_t align = 4096);

    /** Convert a bus address inside the DRAM window to a DRAM offset. */
    std::uint64_t
    dramOffset(Addr bus) const
    {
        return bus - _params.dramBase;
    }

    /** Next unused MSI vector. */
    std::uint16_t allocMsiVector() { return nextMsi++; }

    /** Next unused file-descriptor number (files and sockets share). */
    int allocFd() { return nextFd++; }

    const HostParams &params() const { return _params; }

  private:
    pcie::Fabric &_fabric;
    HostParams _params;
    Memory _dram;
    std::unique_ptr<pcie::HostBridge> _bridge;
    std::unique_ptr<CpuSet> _cpu;
    std::uint64_t dmaBump = 0x10000; //!< skip a guard page
    std::uint16_t nextMsi = 0;
    int nextFd = 3;
};

} // namespace host
} // namespace dcs

#endif // DCS_HOST_HOST_HH
