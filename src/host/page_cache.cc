#include "host/page_cache.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dcs {
namespace host {

PageCache::PageCache(Host &host, ExtentFs &fs, NvmeHostDriver &nvme)
    : host(host), fs(fs), nvme(nvme)
{
    wbArena = host.allocDma(1 << 20);
}

void
PageCache::write(int fd, std::uint64_t offset,
                 std::span<const std::uint8_t> data,
                 std::function<void()> done)
{
    const Inode &ino = fs.inode(fd);
    if (!ino.writable)
        fatal("page cache: fd %d not writable", fd);
    if (offset + data.size() > ino.size)
        fatal("page cache: write beyond eof of '%s'", ino.name.c_str());

    // Page-cache management + the user->kernel copy.
    const std::uint64_t touched =
        (offset + data.size() + 65535) / 65536 - offset / 65536;
    const Tick mgmt = host.costs().pageCachePer64k *
                      std::max<std::uint64_t>(touched, 1);
    host.cpu().run(CpuCat::PageCache, mgmt);
    host.cpu().run(
        CpuCat::DataCopy,
        copyTime(data.size(), host.costs().copyGBps),
        [this, name = ino.name, fd, offset,
         bytes = std::vector<std::uint8_t>(data.begin(), data.end()),
         done = std::move(done)]() mutable {
            // Populate the affected pages (read-modify-write against
            // current flash contents for partial pages).
            std::uint64_t pos = 0;
            while (pos < bytes.size()) {
                const std::uint64_t abs = offset + pos;
                const std::uint64_t page_idx = abs / pageBytes;
                const std::uint64_t in_page = abs % pageBytes;
                const std::uint64_t take = std::min<std::uint64_t>(
                    pageBytes - in_page, bytes.size() - pos);

                auto key = std::make_pair(name, page_idx);
                auto it = pages.find(key);
                if (it == pages.end()) {
                    Page p;
                    p.data.resize(pageBytes);
                    // Seed from flash so partial writes keep the rest.
                    const auto runs =
                        fs.resolve(fd, page_idx * pageBytes, pageBytes);
                    if (!runs.empty())
                        fs.ssd().flash().read(runs.front().lba *
                                                  nvme::lbaSize,
                                              p.data.data(), pageBytes);
                    it = pages.emplace(key, std::move(p)).first;
                }
                std::memcpy(it->second.data.data() + in_page,
                            bytes.data() + pos, take);
                pos += take;
            }
            if (done)
                done();
        });
}

bool
PageCache::dirty(int fd) const
{
    const Inode &ino = fs.inode(fd);
    auto it = pages.lower_bound({ino.name, 0});
    return it != pages.end() && it->first.first == ino.name;
}

std::size_t
PageCache::dirtyPages() const
{
    return pages.size();
}

void
PageCache::flush(int fd, TracePtr trace, std::function<void()> done)
{
    const Inode &ino = fs.inode(fd);
    std::vector<std::pair<std::uint64_t, Page>> to_write;
    for (auto it = pages.lower_bound({ino.name, 0});
         it != pages.end() && it->first.first == ino.name;) {
        to_write.emplace_back(it->first.second, std::move(it->second));
        it = pages.erase(it);
    }
    if (to_write.empty()) {
        if (done)
            done();
        return;
    }

    auto remaining = std::make_shared<std::size_t>(to_write.size());
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    std::uint64_t slot = 0;
    for (auto &[page_idx, page] : to_write) {
        const auto runs = fs.resolve(fd, page_idx * pageBytes, pageBytes);
        if (runs.empty())
            panic("page cache: dirty page beyond extents");
        // Stage the page in DMA memory, then write through the driver.
        const Addr buf = wbArena + (slot++ % 256) * pageBytes;
        host.dram().write(host.dramOffset(buf), page.data.data(),
                          pageBytes);
        ++_writebacks;
        nvme.writeBlocks(runs.front().lba, 1, buf, trace,
                         [remaining, fire] {
                             if (--*remaining == 0 && *fire)
                                 (*fire)();
                         });
    }
}

} // namespace host
} // namespace dcs
