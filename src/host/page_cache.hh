/**
 * @file
 * Host page cache with dirty-page tracking.
 *
 * Applications that write through the normal kernel path leave the
 * latest bytes in page cache, not on flash. The paper's HDC Driver
 * must therefore reconcile with the VFS before issuing a D2D command
 * ("simply bypassing page caches violates the data consistency when
 * the latest data are located in page caches", §IV-B). This model
 * implements buffered writes with per-page dirty tracking and a
 * timed writeback path the driver invokes on demand.
 */

#ifndef DCS_HOST_PAGE_CACHE_HH
#define DCS_HOST_PAGE_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "host/extent_fs.hh"
#include "host/host.hh"
#include "host/nvme_driver.hh"
#include "host/trace.hh"

namespace dcs {
namespace host {

/** Buffered-write cache over one filesystem. */
class PageCache
{
  public:
    PageCache(Host &host, ExtentFs &fs, NvmeHostDriver &nvme);

    /**
     * Buffered application write: bytes land in cache pages (CPU cost
     * charged), flash is NOT updated until writeback.
     */
    void write(int fd, std::uint64_t offset,
               std::span<const std::uint8_t> data,
               std::function<void()> done);

    /** True if @p fd has dirty pages. */
    bool dirty(int fd) const;

    /**
     * Write every dirty page of @p fd to flash through the NVMe
     * driver (timed), then invoke @p done. No-op when clean.
     */
    void flush(int fd, TracePtr trace, std::function<void()> done);

    /** Dirty pages across all files (for stats/tests). */
    std::size_t dirtyPages() const;

    /** Writebacks performed so far. */
    std::uint64_t writebacks() const { return _writebacks; }

  private:
    static constexpr std::uint64_t pageBytes = 4096;

    struct Page
    {
        std::vector<std::uint8_t> data; //!< full page contents
    };

    Host &host;
    ExtentFs &fs;
    NvmeHostDriver &nvme;

    /** (inode name, page index) -> dirty page. */
    std::map<std::pair<std::string, std::uint64_t>, Page> pages;
    Addr wbArena = 0; //!< staging buffer for writeback DMA
    std::uint64_t _writebacks = 0;
};

} // namespace host
} // namespace dcs

#endif // DCS_HOST_PAGE_CACHE_HH
