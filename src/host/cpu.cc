#include "host/cpu.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dcs {
namespace host {

CpuSet::CpuSet(EventQueue &eq, std::string name, int cores)
    : SimObject(eq, std::move(name)),
      coreFree(static_cast<std::size_t>(cores), 0)
{
    if (cores <= 0)
        fatal("CpuSet needs at least one core");
    statsGroup().addBreakdown("busy_ticks", busyTicks, cpuCatName,
                              "busy time per category, current window");
    statsGroup().addValue(
        "utilization", [this] { return utilization(); },
        "aggregate utilization over the current window");
    statsGroup().addValue(
        "cores", [this] { return static_cast<double>(this->cores()); },
        "core count");
}

Tick
CpuSet::run(CpuCat cat, Tick duration, std::function<void()> done)
{
    auto it = std::min_element(coreFree.begin(), coreFree.end());
    const Tick start = std::max(now(), *it);
    const Tick finish = start + duration;
    *it = finish;
    busyTicks.add(cat, static_cast<double>(duration));
#ifdef DCS_TRACING
    // Each core serializes its occupancy, so cores are exclusive
    // lanes; the track name is only built while recording is on.
    if (tracer().enabled())
        tracer().span(start, duration,
                      name() + "/core" +
                          std::to_string(it - coreFree.begin()),
                      cpuCatName(cat), 0, /*lane_exclusive=*/true);
#endif
    if (done)
        schedule(finish - now(), std::move(done));
    return finish;
}

void
CpuSet::beginWindow()
{
    busyTicks.reset();
    _windowStart = now();
}

double
CpuSet::utilization() const
{
    const Tick window = now() - _windowStart;
    if (window == 0)
        return 0.0;
    return busyTicks.total() /
           (static_cast<double>(window) * cores());
}

double
CpuSet::utilization(CpuCat c) const
{
    const Tick window = now() - _windowStart;
    if (window == 0)
        return 0.0;
    return busyTicks.get(c) / (static_cast<double>(window) * cores());
}

double
CpuSet::busyCores(CpuCat c) const
{
    return utilization(c) * cores();
}

} // namespace host
} // namespace dcs
