/**
 * @file
 * A small extent-based filesystem over the NVMe SSD.
 *
 * Provides what the paper's HDC Driver needs from the kernel VFS:
 * file descriptors, permission checks, and — critically — the block
 * addresses of a file's data, which the driver embeds into D2D
 * commands (paper §IV-A/B). Allocation is extent-based so large
 * files resolve to a handful of (LBA, length) runs.
 *
 * Metadata lives in host memory (as an in-kernel inode cache would);
 * file *data* lives in the simulated flash, written either
 * functionally (image pre-population) or through a timed datapath.
 */

#ifndef DCS_HOST_EXTENT_FS_HH
#define DCS_HOST_EXTENT_FS_HH

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "nvme/nvme_ssd.hh"

namespace dcs {
namespace host {

class Host;

/** A contiguous run of blocks. */
struct Extent
{
    std::uint64_t lba = 0;    //!< first logical block (4 KiB blocks)
    std::uint32_t blocks = 0; //!< run length in blocks
};

/** Per-file metadata. */
struct Inode
{
    std::string name;
    std::uint64_t size = 0; //!< bytes
    std::vector<Extent> extents;
    bool readable = true;
    bool writable = true;
};

/** The filesystem. */
class ExtentFs
{
  public:
    ExtentFs(Host &host, nvme::NvmeSsd &ssd);

    /**
     * Create a file and functionally write @p content to flash
     * (image pre-population; consumes no simulated time).
     * @return an open fd.
     */
    int create(const std::string &name,
               std::span<const std::uint8_t> content);

    /** Create a file with space for @p size bytes but no contents. */
    int createEmpty(const std::string &name, std::uint64_t size);

    /** Open an existing file. @return fd, or -1. */
    int open(const std::string &name);

    /** True if @p fd names an open file. */
    bool isOpen(int fd) const { return fds.count(fd) != 0; }

    const Inode &inode(int fd) const;
    Inode &inode(int fd);

    /**
     * Resolve [offset, offset+len) of @p fd into device extents.
     * Used by drivers to build device commands.
     */
    std::vector<Extent> resolve(int fd, std::uint64_t offset,
                                std::uint64_t len) const;

    /** Functional read of file contents (verification helper). */
    std::vector<std::uint8_t> readContents(int fd) const;

    nvme::NvmeSsd &ssd() { return _ssd; }

    std::uint64_t blocksAllocated() const { return nextLba - firstLba; }

  private:
    /** Allocate @p blocks, splitting into extents of max run length. */
    std::vector<Extent> allocate(std::uint64_t blocks);

    Host &host;
    nvme::NvmeSsd &_ssd;
    std::unordered_map<int, std::string> fds;
    std::map<std::string, Inode> inodes;
    std::uint64_t firstLba = 64; //!< reserve a superblock area
    std::uint64_t nextLba = 64;
    /** Max extent run; fragmentation knob (default 8 MiB runs). */
    std::uint32_t maxRunBlocks = 2048;
};

} // namespace host
} // namespace dcs

#endif // DCS_HOST_EXTENT_FS_HH
