#include "host/tcp.hh"

#include "sim/logging.hh"

namespace dcs {
namespace host {

TcpStack::TcpStack(EventQueue &eq, Host &host, NicHostDriver &nic_driver)
    : SimObject(eq, host.name() + ".tcp"), host(host),
      nicDriver(nic_driver)
{
    nicDriver.setRxHandler(
        [this](BufChain frame) { onFrame(std::move(frame)); });
    statsGroup().addCounter("rx_bytes", rxBytes,
                            "payload bytes delivered up from the wire");
    statsGroup().addCounter("tx_bytes", txBytes,
                            "payload bytes handed to the NIC driver");
    statsGroup().addCounter("rx_unmatched", rxUnmatched,
                            "frames matching no connection");
    statsGroup().addCounter("closed", closedConns, "connections closed");
    statsGroup().addValue(
        "connections",
        [this] { return static_cast<double>(conns.size()); },
        "open connections");
}

FlowKey
TcpStack::keyOf(const Connection &c)
{
    return FlowKey{c.out.srcIp, c.out.dstIp, c.out.srcPort,
                   c.out.dstPort};
}

Connection &
TcpStack::establish(net::FlowInfo out, std::uint32_t first_rx_seq)
{
    auto conn = std::make_unique<Connection>();
    conn->fd = host.allocFd();
    conn->out = out;
    conn->nextRxSeq = first_rx_seq;
    Connection &ref = *conn;
    conns[ref.fd] = std::move(conn);
    // First-established connection owns a duplicate flow key
    // (insert-if-absent keeps the existing entry) — the winner is
    // fixed by establishment order, never by container layout.
    demux.emplaceIfAbsent(keyOf(ref), ref.fd);
    return ref;
}

Connection *
TcpStack::findByFd(int fd)
{
    auto it = conns.find(fd);
    return it == conns.end() ? nullptr : it->second.get();
}

const Connection *
TcpStack::findByFd(int fd) const
{
    auto it = conns.find(fd);
    return it == conns.end() ? nullptr : it->second.get();
}

bool
TcpStack::close(int fd)
{
    auto it = conns.find(fd);
    if (it == conns.end())
        return false;
    const FlowKey key = keyOf(*it->second);
    conns.erase(it);
    ++closedConns;

    const int *owner = demux.find(key);
    if (owner && *owner == fd) {
        demux.erase(key);
        // Promote the earliest-established survivor with the same
        // flow key (conns is ordered by fd == establishment order).
        for (const auto &[other_fd, other] : conns) {
            if (keyOf(*other) == key) {
                demux.emplaceIfAbsent(key, other_fd);
                break;
            }
        }
    }
    return true;
}

void
TcpStack::send(Connection &conn, Addr payload, std::uint32_t len,
               std::uint32_t mss, TracePtr trace,
               std::function<void()> done)
{
    sendFd(conn.fd, payload, len, mss, std::move(trace),
           std::move(done));
}

void
TcpStack::sendFd(int fd, Addr payload, std::uint32_t len,
                 std::uint32_t mss, TracePtr trace,
                 std::function<void()> done)
{
    // The kernel hands the NIC at most one GSO aggregate (64 KiB) per
    // protocol pass; larger writes loop through the stack, which is
    // where the per-byte kernel cost of the software designs lives.
    constexpr std::uint32_t gso = 64 * 1024;
    const std::uint32_t piece = std::min(len, gso);

    const Tick t0 = now();
    host.cpu().run(CpuCat::SocketBuffer, host.costs().sockBufMgmt,
                   [this, fd, payload, len, piece, mss, trace, t0,
                    done = std::move(done)]() mutable {
        host.cpu().run(
            CpuCat::NetworkProto, host.costs().tcpProto,
            [this, fd, payload, len, piece, mss, trace, t0,
             done = std::move(done)]() mutable {
                // Re-resolve by fd: the connection may have been
                // closed while this pass queued on the CPU.
                Connection *c = findByFd(fd);
                if (!c)
                    return;
                if (trace)
                    trace->add(LatComp::NetworkStack, now() - t0);
                // One protocol pass (sockbuf + TCP/IP) per GSO piece.
                TRACE_SPAN(tracer(), t0, now() - t0, name(), "tcp_tx",
                           trace ? trace->flow : 0);
                const net::FlowInfo flow = c->out;
                c->out.seq += piece;
                txBytes += piece;
                const std::uint32_t rest = len - piece;
                if (rest == 0) {
                    nicDriver.sendSegment(flow, payload, piece, mss,
                                          trace, std::move(done));
                    return;
                }
                nicDriver.sendSegment(
                    flow, payload, piece, mss, trace,
                    [this, fd, payload, piece, rest, mss, trace,
                     done = std::move(done)]() mutable {
                        sendFd(fd, payload + piece, rest, mss, trace,
                               std::move(done));
                    });
            });
    });
}

void
TcpStack::onFrame(BufChain frame)
{
    // Protocol receive processing cost per frame.
    host.cpu().run(CpuCat::NetworkProto, host.costs().tcpProto,
                   [this, frame = std::move(frame)] {
                       auto parsed = net::parseFrame(frame);
                       if (!parsed) {
                           warn("%s: dropping unparseable frame",
                                name().c_str());
                           return;
                       }
                       // Demux on the (local, remote) endpoint pair of
                       // the arriving frame — an O(1) point lookup,
                       // deterministic under duplicate port pairs
                       // (ownership fixed at establish/close time).
                       const FlowKey key{parsed->flow.dstIp,
                                         parsed->flow.srcIp,
                                         parsed->flow.dstPort,
                                         parsed->flow.srcPort};
                       const int *owner = demux.find(key);
                       Connection *conn =
                           owner ? findByFd(*owner) : nullptr;
                       if (!conn) {
                           ++rxUnmatched;
                           warn("%s: frame for unknown connection",
                                name().c_str());
                           return;
                       }
                       rxBytes += parsed->payloadLen;
                       if (parsed->flow.seq != conn->nextRxSeq)
                           warn("%s: out-of-order seq %u (want %u)",
                                name().c_str(), parsed->flow.seq,
                                conn->nextRxSeq);
                       conn->nextRxSeq =
                           parsed->flow.seq +
                           static_cast<std::uint32_t>(
                               parsed->payloadLen);
                       if (conn->onPayload) {
                           // Zero-copy: hand up a refcounted view of
                           // the frame's payload bytes.
                           conn->onPayload(
                               parsed->flow.seq,
                               frame.slice(parsed->payloadOffset,
                                           parsed->payloadLen));
                       }
                   });
}

std::pair<Connection *, Connection *>
establishPair(TcpStack &a, TcpStack &b, const ConnPairParams &p)
{
    net::FlowInfo a_out;
    a_out.srcMac = p.macA;
    a_out.dstMac = p.macB;
    a_out.srcIp = p.ipA;
    a_out.dstIp = p.ipB;
    a_out.srcPort = p.portA;
    a_out.dstPort = p.portB;
    a_out.seq = p.seqA;
    a_out.ack = p.seqB;

    net::FlowInfo b_out;
    b_out.srcMac = p.macB;
    b_out.dstMac = p.macA;
    b_out.srcIp = p.ipB;
    b_out.dstIp = p.ipA;
    b_out.srcPort = p.portB;
    b_out.dstPort = p.portA;
    b_out.seq = p.seqB;
    b_out.ack = p.seqA;

    Connection &ca = a.establish(a_out, p.seqB);
    Connection &cb = b.establish(b_out, p.seqA);
    return {&ca, &cb};
}

} // namespace host
} // namespace dcs
