/**
 * @file
 * Accounting category enums shared by the CPU-utilization model and
 * the per-request latency traces. These map one-to-one onto the bar
 * segments of the paper's figures (Fig. 3, 8, 11, 12).
 */

#ifndef DCS_HOST_CATEGORIES_HH
#define DCS_HOST_CATEGORIES_HH

#include <cstddef>

namespace dcs {
namespace host {

/** What a CPU core is busy doing (CPU-utilization breakdowns). */
enum class CpuCat
{
    User,            //!< application logic
    FileSystem,      //!< VFS, extent lookup, metadata
    PageCache,       //!< page-cache and I/O buffer management
    DataCopy,        //!< user<->kernel and kernel<->kernel copies
    SocketBuffer,    //!< skb alloc/free and socket queue management
    NetworkProto,    //!< TCP/IP protocol processing
    DeviceControl,   //!< driver submit/complete for SSD and NIC
    Interrupt,       //!< IRQ entry/exit and dispatch
    GpuControl,      //!< accelerator launch/sync driver work
    GpuCopy,         //!< cudaMemcpy-style staging copies
    HashCompute,     //!< checksum/crypto executed on the CPU
    HdcDriver,       //!< DCS-ctrl's thin driver path
    NumCategories,
};

/** Short label for reports. */
const char *cpuCatName(CpuCat c);

/** Latency-breakdown components (Fig. 3a / Fig. 11 bar segments). */
enum class LatComp
{
    FileSystem,        //!< metadata and block-address resolution
    DeviceControl,     //!< command submission (driver + doorbells)
    Read,              //!< SSD media + data transfer
    RequestCompletion, //!< completion handling and IRQ delivery
    NetworkStack,      //!< protocol/socket processing + NIC submit
    NetworkSend,       //!< wire serialization of the segments
    Hash,              //!< intermediate processing (GPU/NDP/CPU)
    GpuControl,        //!< kernel launch/sync
    GpuCopy,           //!< CPU<->GPU staging copies
    DataCopy,          //!< host-memory staging copies
    Scoreboard,        //!< HDC Engine command handling
    Other,
    NumCategories,
};

/** Short label for reports. */
const char *latCompName(LatComp c);

} // namespace host
} // namespace dcs

#endif // DCS_HOST_CATEGORIES_HH
