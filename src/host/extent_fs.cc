#include "host/extent_fs.hh"

#include <algorithm>

#include "host/host.hh"
#include "sim/logging.hh"

namespace dcs {
namespace host {

ExtentFs::ExtentFs(Host &host, nvme::NvmeSsd &ssd) : host(host), _ssd(ssd)
{
}

std::vector<Extent>
ExtentFs::allocate(std::uint64_t blocks)
{
    std::vector<Extent> out;
    while (blocks > 0) {
        const std::uint32_t run = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(blocks, maxRunBlocks));
        if ((nextLba + run) * nvme::lbaSize > _ssd.flash().size())
            fatal("extentfs: flash full");
        out.push_back({nextLba, run});
        nextLba += run;
        blocks -= run;
    }
    return out;
}

int
ExtentFs::create(const std::string &name,
                 std::span<const std::uint8_t> content)
{
    const int fd = createEmpty(name, content.size());
    // Pre-populate flash functionally.
    const Inode &ino = inodes.at(name);
    std::uint64_t off = 0;
    for (const Extent &e : ino.extents) {
        const std::uint64_t n = std::min<std::uint64_t>(
            std::uint64_t(e.blocks) * nvme::lbaSize, content.size() - off);
        _ssd.flash().write(e.lba * nvme::lbaSize, content.data() + off, n);
        off += n;
        if (off >= content.size())
            break;
    }
    return fd;
}

int
ExtentFs::createEmpty(const std::string &name, std::uint64_t size)
{
    if (inodes.count(name))
        fatal("extentfs: file '%s' exists", name.c_str());
    Inode ino;
    ino.name = name;
    ino.size = size;
    const std::uint64_t blocks =
        (size + nvme::lbaSize - 1) / nvme::lbaSize;
    ino.extents = allocate(std::max<std::uint64_t>(blocks, 1));
    inodes[name] = std::move(ino);
    return open(name);
}

int
ExtentFs::open(const std::string &name)
{
    if (!inodes.count(name))
        return -1;
    const int fd = host.allocFd();
    fds[fd] = name;
    return fd;
}

const Inode &
ExtentFs::inode(int fd) const
{
    auto it = fds.find(fd);
    if (it == fds.end())
        panic("extentfs: bad fd %d", fd);
    return inodes.at(it->second);
}

Inode &
ExtentFs::inode(int fd)
{
    auto it = fds.find(fd);
    if (it == fds.end())
        panic("extentfs: bad fd %d", fd);
    return inodes.at(it->second);
}

std::vector<Extent>
ExtentFs::resolve(int fd, std::uint64_t offset, std::uint64_t len) const
{
    const Inode &ino = inode(fd);
    if (offset + len > (ino.size + nvme::lbaSize - 1) / nvme::lbaSize *
                           nvme::lbaSize)
        panic("extentfs: resolve beyond eof of '%s'", ino.name.c_str());
    if (offset % nvme::lbaSize != 0)
        panic("extentfs: unaligned resolve offset");

    std::vector<Extent> out;
    std::uint64_t skip = offset / nvme::lbaSize;
    std::uint64_t need = (len + nvme::lbaSize - 1) / nvme::lbaSize;
    for (const Extent &e : ino.extents) {
        if (need == 0)
            break;
        if (skip >= e.blocks) {
            skip -= e.blocks;
            continue;
        }
        const std::uint64_t avail = e.blocks - skip;
        const std::uint32_t take =
            static_cast<std::uint32_t>(std::min(avail, need));
        out.push_back({e.lba + skip, take});
        skip = 0;
        need -= take;
    }
    if (need != 0)
        panic("extentfs: file '%s' shorter than resolve request",
              ino.name.c_str());
    return out;
}

std::vector<std::uint8_t>
ExtentFs::readContents(int fd) const
{
    const Inode &ino = inode(fd);
    std::vector<std::uint8_t> out(ino.size);
    std::uint64_t off = 0;
    for (const Extent &e : ino.extents) {
        if (off >= ino.size)
            break;
        const std::uint64_t n = std::min<std::uint64_t>(
            std::uint64_t(e.blocks) * nvme::lbaSize, ino.size - off);
        _ssd.flash().read(e.lba * nvme::lbaSize, out.data() + off, n);
        off += n;
    }
    return out;
}

} // namespace host
} // namespace dcs
