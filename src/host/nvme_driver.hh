/**
 * @file
 * Host-side NVMe driver model (the optimized kernel path).
 *
 * Queues live in host DRAM, doorbells are MMIO through the root
 * complex, completions arrive via MSI. Every software step occupies a
 * CPU core for its calibrated cost and is attributed to the request's
 * latency trace — this is the "SW opt" / "SW-ctrl P2P" control path
 * of the paper (Fig. 2/3): even with an optimized stack, submission
 * and completion cross the user/kernel and SW/HW boundaries.
 */

#ifndef DCS_HOST_NVME_DRIVER_HH
#define DCS_HOST_NVME_DRIVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "host/host.hh"
#include "host/trace.hh"
#include "nvme/nvme_ssd.hh"
#include "pcie/doorbell.hh"

namespace dcs {
namespace host {

/** Kernel NVMe driver bound to one SSD. */
class NvmeHostDriver : public SimObject
{
  public:
    NvmeHostDriver(EventQueue &eq, Host &host, nvme::NvmeSsd &ssd,
                   std::uint16_t queue_depth = 256);

    /** Bring up the controller and IO queue pair (admin commands). */
    void init(std::function<void()> done);

    /**
     * Read @p nblocks from @p slba into bus address @p dst
     * (host DRAM or a peer device BAR — the P2P baseline passes GPU
     * memory here). CPU costs are charged; @p done fires when the
     * completion has been processed on the CPU.
     */
    void readBlocks(std::uint64_t slba, std::uint32_t nblocks, Addr dst,
                    TracePtr trace, std::function<void()> done);

    /** Write variant of readBlocks. */
    void writeBlocks(std::uint64_t slba, std::uint32_t nblocks, Addr src,
                     TracePtr trace, std::function<void()> done);

    /**
     * Create an additional IO queue pair whose SQ/CQ live at the
     * given bus addresses (e.g. in HDC Engine BRAM) with interrupts
     * disabled — the paper's extended driver dedicates device queue
     * pairs to the HDC Engine (§IV-B).
     */
    void createDedicatedQueuePair(std::uint16_t qid, std::uint16_t qdepth,
                                  Addr sq_bus, Addr cq_bus,
                                  std::function<void()> done);

    bool ready() const { return _ready; }

    /**
     * Batch the IO submission-queue tail doorbell: one MMIO per
     * @p max submissions or @p holdoff window, whichever first
     * (0 = ring per submission, the legacy behavior).
     */
    void setDoorbellBatch(std::uint32_t max, Tick holdoff);

    /** Actual IO doorbell MMIO writes (SQ tail + CQ head). */
    std::uint64_t
    doorbellWrites() const
    {
        return sqDb.mmioWrites() + cqDoorbells;
    }

  private:
    struct Pending
    {
        TracePtr trace;
        std::function<void()> done;
        Tick submitted = 0;
    };

    /** Place one command in the IO SQ and ring the doorbell. */
    void submitIo(nvme::SqEntry sqe, TracePtr trace,
                  std::function<void()> done);

    /** Build PRP entries for [dst, dst + nblocks*4K). */
    void fillPrps(nvme::SqEntry &sqe, Addr data, std::uint32_t nblocks);

    void adminSubmit(nvme::SqEntry sqe, std::function<void()> done);
    void onAdminMsi();
    void onIoMsi();

    Host &host;
    nvme::NvmeSsd &ssd;
    std::uint16_t qdepth;

    // Queue memory (bus addresses in host DRAM).
    Addr asqBase = 0, acqBase = 0, ioSqBase = 0, ioCqBase = 0;
    Addr prpArena = 0;
    std::uint16_t adminTail = 0, adminCqHead = 0;
    std::uint16_t ioTail = 0, ioCqHead = 0;
    bool ioPhase = true;
    bool adminPhase = true;
    std::uint16_t nextCid = 0;
    std::uint16_t prpSlot = 0;

    std::unordered_map<std::uint16_t, Pending> inflight;
    std::deque<std::function<void()>> adminWaiters;
    pcie::DoorbellBatcher sqDb; //!< IO SQ tail doorbell
    std::uint64_t cqDoorbells = 0;
    bool _ready = false;

    static constexpr std::uint16_t adminQSize = 16;
};

} // namespace host
} // namespace dcs

#endif // DCS_HOST_NVME_DRIVER_HH
