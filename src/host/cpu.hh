/**
 * @file
 * CPU-core occupancy model with per-category utilization accounting.
 *
 * Software routines do not "execute" instructions here; they occupy a
 * core for a calibrated duration tagged with a CpuCat. Contention
 * emerges naturally: when all cores are busy, subsequent routines
 * queue, which is exactly how the paper's CPU-bound baselines lose
 * throughput (Fig. 12/13).
 */

#ifndef DCS_HOST_CPU_HH
#define DCS_HOST_CPU_HH

#include <functional>
#include <vector>

#include "host/categories.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace dcs {
namespace host {

/** A pool of identical cores with earliest-free scheduling. */
class CpuSet : public SimObject
{
  public:
    CpuSet(EventQueue &eq, std::string name, int cores);

    /**
     * Occupy a core for @p duration doing @p cat work, then invoke
     * @p done. If every core is busy the work queues (FIFO per call
     * order via the earliest-free-core rule).
     * @return the tick at which the work will complete.
     */
    Tick run(CpuCat cat, Tick duration, std::function<void()> done);

    /** Fire-and-forget accounting variant. */
    Tick
    run(CpuCat cat, Tick duration)
    {
        return run(cat, duration, std::function<void()>{});
    }

    int cores() const { return static_cast<int>(coreFree.size()); }

    /** Begin a measurement window (zeroes per-category busy time). */
    void beginWindow();

    /** Busy time per category inside the current window. */
    const stats::Breakdown<CpuCat> &busy() const { return busyTicks; }

    /**
     * Aggregate utilization over the window ending now: busy-core
     * seconds / (cores * window). 1.0 = all cores always busy.
     */
    double utilization() const;

    /** Utilization contributed by one category. */
    double utilization(CpuCat c) const;

    /** Equivalent busy cores for one category (utilization * cores). */
    double busyCores(CpuCat c) const;

    Tick windowStart() const { return _windowStart; }

  private:
    std::vector<Tick> coreFree;
    stats::Breakdown<CpuCat> busyTicks;
    Tick _windowStart = 0;
};

} // namespace host
} // namespace dcs

#endif // DCS_HOST_CPU_HH
