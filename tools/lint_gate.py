#!/usr/bin/env python3
"""Determinism-lint ctest gate with automatic engine fallback.

Preference order:

  1. tools/dcslint (primary) — clang engine when clang.cindex +
     libclang are importable, else its built-in zero-dependency syntax
     engine. dcslint handles that choice itself (--engine auto).
  2. tools/simlint.py (last resort) — the original regex lint, used
     only if the dcslint package cannot even be imported (e.g. a
     partial checkout).

Arguments are passed through unchanged (paths to lint, plus any
dcslint flags when dcslint is selected; simlint only receives the
paths).
"""

import pathlib
import sys

TOOLS = pathlib.Path(__file__).resolve().parent


def main(argv):
    sys.path.insert(0, str(TOOLS))
    try:
        from dcslint import cli
    except Exception as exc:  # pragma: no cover - degraded environment
        sys.stderr.write(
            "lint_gate: dcslint unavailable (%s); "
            "falling back to simlint\n" % exc)
        import simlint
        paths = [a for a in argv if not a.startswith("-")]
        return simlint.main(paths)
    return cli.run(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
