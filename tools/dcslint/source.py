"""Source-file model: text, tokens, waivers, findings.

Waiver comments follow the form

    // dcslint: allow(<rule>): <justification>

on the finding's line or the line above, or — for idioms that pervade
a whole file (e.g. tests capturing locals by reference and running the
queue from the same frame) —

    // dcslint: allow-file(<rule>): <justification>

anywhere in the file. The justification is mandatory — a waiver is a
reviewed decision, and the reviewer's reasoning must survive in the
code. A waiver with a missing/empty justification or an unknown rule
id is itself reported (bad-waiver).
"""

import hashlib
import pathlib
import re
from collections import namedtuple

from dcslint import rules

Finding = namedtuple("Finding", ["file", "line", "rule", "severity",
                                 "message"])

_ALLOW_RE = re.compile(
    r"//.*?\bdcslint:\s*allow(-file)?\(([A-Za-z0-9_-]+)\)(?::\s*(.*\S))?")


def make_finding(path, line, rule_id, message):
    return Finding(str(path), line, rule_id,
                   rules.BY_ID[rule_id].severity, message)


class SourceFile:
    """One lint unit: raw text plus lazily built token stream."""

    def __init__(self, path, text=None):
        self.path = pathlib.Path(path)
        if text is None:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        self.text = text
        self.lines = text.splitlines()
        self._tokens = None
        # line -> {rule, ...}; waiver covers its own line and the next.
        self.allows = {}
        self.file_allows = set()
        self.waiver_findings = []
        self._scan_waivers()

    @property
    def tokens(self):
        if self._tokens is None:
            from dcslint.lexer import tokenize
            self._tokens = tokenize(self.text)
        return self._tokens

    def _scan_waivers(self):
        for lineno, line in enumerate(self.lines, 1):
            for m in _ALLOW_RE.finditer(line):
                whole_file, rule_id, why = (m.group(1) is not None,
                                            m.group(2), m.group(3))
                form = "allow-file" if whole_file else "allow"
                if rule_id not in rules.BY_ID:
                    self.waiver_findings.append(make_finding(
                        self.path, lineno, "bad-waiver",
                        "%s(%s) names an unknown rule"
                        % (form, rule_id)))
                    continue
                if not why or len(why.strip()) < 10:
                    self.waiver_findings.append(make_finding(
                        self.path, lineno, "bad-waiver",
                        "%s(%s) needs a justification: "
                        "`// dcslint: %s(%s): <why>'"
                        % (form, rule_id, form, rule_id)))
                    continue
                if whole_file:
                    self.file_allows.add(rule_id)
                else:
                    self.allows.setdefault(lineno, set()).add(rule_id)
                    self.allows.setdefault(lineno + 1, set()).add(rule_id)

    def waived(self, finding):
        return (finding.rule in self.file_allows
                or finding.rule in self.allows.get(finding.line, ()))

    def line_text(self, lineno):
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def finding_key(finding, source=None):
    """Stable baseline key: content-addressed so line drift in other
    parts of the file does not invalidate baselined findings."""
    text = source.line_text(finding.line).strip() if source else ""
    digest = hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]
    return "%s|%s|%s" % (finding.file, finding.rule, digest)
