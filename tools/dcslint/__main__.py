import os
import sys

# Support `python3 tools/dcslint ...`: put tools/ on sys.path so the
# package imports as `dcslint` regardless of invocation style.
_here = os.path.dirname(os.path.abspath(__file__))
_parent = os.path.dirname(_here)
if _parent not in sys.path:
    sys.path.insert(0, _parent)

from dcslint.cli import run  # noqa: E402

if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
