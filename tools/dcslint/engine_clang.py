"""libclang (clang.cindex) engine — type-accurate rule checks.

Driven by compile_commands.json: each TU is parsed with its real
flags, so member containers declared in headers, accessor return
types, and pointer-typed template arguments are all resolved by the
compiler, not guessed. Import of this module is gated by the CLI
(engine='auto' falls back to the syntax engine when clang.cindex or a
libclang shared object is unavailable).

Rule ids, severities and the effect-call heuristics are shared with
the syntax engine via dcslint/rules.py, so both engines report the
same hazards under the same names.
"""

import os
import re

from clang import cindex
from clang.cindex import CursorKind, TypeKind

from dcslint import rules
from dcslint.source import make_finding

_UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset")


def available():
    try:
        cindex.Config().get_cindex_library()
        return True
    except Exception:
        return False


class ClangEngine:
    def __init__(self, compdb_dir, project_root):
        self.compdb = cindex.CompilationDatabase.fromDirectory(compdb_dir)
        self.index = cindex.Index.create()
        self.root = os.path.realpath(project_root)

    def check_files(self, sources):
        """Findings for the given SourceFiles (a path -> SourceFile
        map decides which locations are reported)."""
        wanted = {os.path.realpath(str(s.path)): s for s in sources}
        findings = []
        seen = set()
        for real, src in sorted(wanted.items()):
            if not real.endswith((".cc", ".cpp", ".cxx")):
                continue
            tu = self._parse(real)
            if tu is None:
                continue
            self._walk(tu.cursor, wanted, findings, seen)
        # Headers never reached by any TU still get checked: parse
        # them as standalone C++ so no file silently escapes.
        covered = {f for (f, _, _, _) in seen}
        for real, src in sorted(wanted.items()):
            if real.endswith((".hh", ".hpp", ".h")) and real not in covered:
                tu = self._parse(real, header=True)
                if tu is not None:
                    self._walk(tu.cursor, wanted, findings, seen)
        return findings

    def _parse(self, path, header=False):
        cmds = self.compdb.getCompileCommands(path)
        if cmds:
            raw = list(cmds[0].arguments)[1:]  # drop compiler argv[0]
            args = [a for i, a in enumerate(raw)
                    if a not in ("-c", "-o", path)
                    and (i == 0 or raw[i - 1] != "-o")]
        else:
            # Not in the compilation database (headers, the fixture
            # corpus): parse standalone with the project includes.
            args = ["-x", "c++", "-std=c++20",
                    "-I" + os.path.dirname(path),
                    "-I" + os.path.join(self.root, "src"),
                    "-I" + os.path.join(self.root, "bench"),
                    "-I" + self.root]
        try:
            return self.index.parse(path, args=args)
        except cindex.TranslationUnitLoadError:
            return None

    def _walk(self, cursor, wanted, findings, seen):
        for cur in cursor.walk_preorder():
            loc = cur.location
            if loc.file is None:
                continue
            real = os.path.realpath(loc.file.name)
            src = wanted.get(real)
            if src is None:
                continue
            for f in self._check_cursor(cur, src):
                key = (real, f.line, f.rule, f.message)
                if key not in seen:
                    seen.add(key)
                    findings.append(f)

    # -- dispatch ------------------------------------------------------

    def _check_cursor(self, cur, src):
        kind = cur.kind
        if kind == CursorKind.CXX_FOR_RANGE_STMT:
            return self._nondet_iteration(cur, src)
        if kind in (CursorKind.VAR_DECL, CursorKind.FIELD_DECL):
            out = list(self._pointer_keyed(cur, src))
            if kind == CursorKind.VAR_DECL:
                out.extend(self._shared_static(cur, src))
            return out
        if kind == CursorKind.CALL_EXPR:
            return self._ambient_call(cur, src) \
                + self._pointer_sort(cur, src)
        if kind == CursorKind.DECL_REF_EXPR or kind == CursorKind.TYPE_REF:
            return self._ambient_type(cur, src)
        if kind == CursorKind.LAMBDA_EXPR:
            return self._callback_lifetime(cur, src)
        if kind == CursorKind.DEFAULT_STMT:
            return self._silent_default(cur, src)
        if kind == CursorKind.CXX_NEW_EXPR:
            return [make_finding(
                src.path, cur.location.line, "raw-new-delete",
                "raw `new' (use std::make_unique or a value member)")]
        if kind == CursorKind.CXX_DELETE_EXPR:
            return [make_finding(
                src.path, cur.location.line, "raw-new-delete",
                "raw `delete' (ownership belongs in smart pointers)")]
        # Note: bare relational comparison of two pointers (`a < b`) is
        # NOT flagged — `p < end` bounds checks over one allocation are
        # idiomatic and fine. Ordering *data structures* by address
        # (map/set keys, std::hash, sort, uintptr_t casts) is what
        # diverges runs, and those shapes are covered above.
        return []

    # -- rules ---------------------------------------------------------

    def _nondet_iteration(self, cur, src):
        children = list(cur.get_children())
        if not children:
            return []
        range_t = _strip(children[0].type)
        name = range_t.spelling
        if not any(u in name for u in _UNORDERED):
            return []
        body = children[-1]
        effect = self._loop_effect(cur, body, src)
        if effect is None:
            return []
        short = name.split("<")[0].rsplit("::", 1)[-1]
        return [make_finding(
            src.path, cur.location.line, "nondet-iteration",
            "range-for over unordered container `%s' %s; iteration "
            "order is implementation-defined (snapshot keys and sort, "
            "or key by a stable id)" % (short, effect))]

    def _loop_effect(self, loop, body, src):
        """Mirror of the syntax engine's body classification:
        mutations rooted at the loop variable are per-element and
        benign, and a loop that only appends to containers that are
        sorted right after (snapshot-and-sort) is order-independent."""
        append_targets = set()
        other = None
        for cur in body.walk_preorder():
            if cur.kind != CursorKind.CALL_EXPR:
                continue
            callee = cur.spelling or ""
            if callee in rules.SCHEDULING_CALLS:
                return "schedules events"
            if callee in rules.EMITTING_CALLS \
                    or callee.startswith("TRACE_"):
                other = "emits records"
            elif callee in rules.MUTATING_CALLS:
                base = self._call_base_decl(cur)
                if base is not None and _within(loop.extent,
                                                base.location):
                    continue  # mutation of the current element
                if callee in rules.APPENDING_CALLS and base is not None:
                    append_targets.add(base.spelling)
                else:
                    other = "mutates external state"
        if other:
            return other
        if append_targets:
            if all(self._sorted_after(src, loop.extent, t)
                   for t in append_targets):
                return None
            if len(append_targets) == 1:
                return ("collects into `%s' which is never sorted"
                        % next(iter(append_targets)))
            return "mutates external state"
        return None

    @staticmethod
    def _call_base_decl(call):
        """The declaration of the object a member call mutates
        (`keys` in `keys.push_back(x)`), or None when it cannot be
        pinned (implicit this, chained temporaries)."""
        for child in call.get_children():
            if child.kind == CursorKind.MEMBER_REF_EXPR:
                for sub in child.walk_preorder():
                    if sub.kind == CursorKind.DECL_REF_EXPR:
                        return sub.referenced
                return None
        return None

    @staticmethod
    def _sorted_after(src, extent, target):
        end = extent.end.line
        text = " ".join(src.lines[end:end + 8])
        return bool(re.search(
            r"\b(?:stable_)?sort\s*\([^;]*\b%s\b" % re.escape(target),
            text))

    def _pointer_keyed(self, cur, src):
        t = _strip(cur.type)
        name = t.spelling
        base = name.split("<")[0].rsplit("::", 1)[-1]
        if base in ("map", "set", "multimap", "multiset") \
                and "std::" in name:
            if t.get_num_template_arguments() >= 1:
                key = t.get_template_argument_type(0)
                if key.kind == TypeKind.POINTER:
                    return [make_finding(
                        src.path, cur.location.line, "pointer-order",
                        "std::%s keyed by raw pointer `%s': ordering "
                        "follows the allocator/ASLR, not the model; "
                        "key by a stable id"
                        % (base, key.spelling))]
        return []

    def _pointer_sort(self, cur, src):
        if cur.spelling not in ("sort", "stable_sort", "nth_element"):
            return []
        for arg in cur.get_arguments():
            at = _strip(arg.type)
            elem = None
            if at.kind == TypeKind.POINTER:
                elem = at.get_pointee()
            elif "iterator" in at.spelling and \
                    at.get_num_template_arguments() >= 1:
                elem = at.get_template_argument_type(0)
            if elem is not None and \
                    _strip(elem).kind == TypeKind.POINTER:
                return [make_finding(
                    src.path, cur.location.line, "pointer-order",
                    "sorting a sequence of raw pointers orders by "
                    "address; sort by a stable key instead")]
        return []

    def _ambient_call(self, cur, src):
        callee = cur.spelling or ""
        if callee not in rules.AMBIENT_CALLS:
            return []
        ref = cur.referenced
        if ref is not None and ref.semantic_parent is not None:
            parent = ref.semantic_parent.kind
            if parent not in (CursorKind.TRANSLATION_UNIT,
                              CursorKind.NAMESPACE,
                              CursorKind.LINKAGE_SPEC):
                return []  # a method named e.g. `time` on some class
            pspell = ref.semantic_parent.spelling
            if parent == CursorKind.NAMESPACE and pspell != "std":
                return []
        return [make_finding(
            src.path, cur.location.line, "ambient-time-randomness",
            "call to wall-clock/ambient-randomness function `%s'; use "
            "EventQueue::now() / dcs::Rng" % callee)]

    def _ambient_type(self, cur, src):
        spelling = cur.spelling or ""
        leaf = spelling.rsplit("::", 1)[-1]
        if leaf in rules.AMBIENT_TYPES:
            return [make_finding(
                src.path, cur.location.line, "ambient-time-randomness",
                "`%s' is an ambient randomness/clock source; use "
                "dcs::Rng / EventQueue::now()" % leaf)]
        return []

    def _callback_lifetime(self, cur, src):
        if not self._inside_deferred_call(cur):
            return []
        toks = list(cur.get_tokens())
        depth = 0
        for t in toks:
            if t.spelling == "[":
                depth += 1
            elif t.spelling == "]":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1 and t.spelling == "&":
                return [make_finding(
                    src.path, cur.location.line, "callback-lifetime",
                    "deferred callback captures by reference; the "
                    "referent can die before the event fires — "
                    "capture by value (or a stable id) instead")]
        return []

    def _inside_deferred_call(self, cur):
        p = cur.semantic_parent
        node = cur
        hops = 0
        while node is not None and hops < 6:
            if node.kind == CursorKind.CALL_EXPR and \
                    (node.spelling in rules.SCHEDULING_CALLS
                     or node.spelling == "InlineCallback"):
                return True
            node = node.lexical_parent if hops else p
            hops += 1
        # Fallback: cindex does not expose expression parents, so
        # approximate via the source text just before the lambda.
        src_line = cur.location.line
        text = ""
        try:
            with open(cur.location.file.name, encoding="utf-8",
                      errors="replace") as fh:
                lines = fh.read().splitlines()
            text = " ".join(lines[max(0, src_line - 3):src_line])
        except OSError:
            pass
        return any(c + "(" in text.replace(" ", "")
                   for c in ("schedule", "scheduleAt", "InlineCallback"))

    def _shared_static(self, cur, src):
        sc = cur.storage_class
        is_static = sc == cindex.StorageClass.STATIC
        parent = cur.semantic_parent
        at_ns = parent is not None and parent.kind in (
            CursorKind.TRANSLATION_UNIT, CursorKind.NAMESPACE)
        if not is_static and not at_ns:
            return []
        if str(src.path).endswith((".hh", ".hpp", ".h")) and not is_static:
            return []
        t = cur.type
        if t.is_const_qualified() or _strip(t).is_const_qualified():
            return []
        spelling = t.spelling
        if "atomic" in spelling or "mutex" in spelling \
                or "once_flag" in spelling \
                or "condition_variable" in spelling:
            return []
        toks = {tok.spelling for tok in cur.get_tokens()}
        if {"thread_local", "constexpr", "const", "constinit"} & toks:
            return []
        if cur.kind == CursorKind.VAR_DECL and not cur.is_definition():
            return []
        line = cur.location.line
        fake = []
        from dcslint.engine_syntax import _thread_safe_annotated
        if _thread_safe_annotated(src, line, fake):
            return fake
        return [make_finding(
            src.path, line, "unsafe-shared-static",
            "mutable static `%s' is shared across parallel bench "
            "tasks; make it std::atomic/thread_local, or annotate "
            "DCS_THREAD_SAFE(\"why\") if access is provably "
            "synchronized" % cur.spelling)]

    def _silent_default(self, cur, src):
        kids = list(cur.get_children())
        silent = (not kids
                  or (len(kids) == 1
                      and kids[0].kind == CursorKind.BREAK_STMT))
        if not silent:
            return []
        return [make_finding(
            src.path, cur.location.line, "silent-switch-default",
            "default: swallows impossible values silently; panic() on "
            "cases that cannot happen")]


def _within(extent, location):
    """Is `location` inside `extent` (same file, line range)?"""
    try:
        if location.file is None or extent.start.file is None:
            return False
        if os.path.realpath(location.file.name) != \
                os.path.realpath(extent.start.file.name):
            return False
        return extent.start.line <= location.line <= extent.end.line
    except Exception:
        return False


def _strip(t):
    try:
        c = t.get_canonical()
        while c.kind in (TypeKind.LVALUEREFERENCE,
                         TypeKind.RVALUEREFERENCE):
            c = c.get_pointee().get_canonical()
        return c
    except Exception:
        return t
