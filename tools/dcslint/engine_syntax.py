"""Zero-dependency token-level engine.

Everything here works on the token stream from dcslint/lexer.py plus
the cross-file ProjectIndex — never on raw text — so the engine sees
through formatting: wrapped statements, `this->` qualification,
members declared in other files, accessor-mediated iteration. It is
deliberately conservative where only a type system can decide (e.g.
relational comparison of two arbitrary pointers is left to the clang
engine); every check it does make is exact on token shapes.
"""

from dcslint import rules
from dcslint.lexer import match_forward, skip_template_args
from dcslint.source import make_finding

_EXPR_CONTEXT_IDS = frozenset({"return", "case", "co_return", "co_yield"})
_SYNC_TYPES = frozenset({
    "atomic", "atomic_flag", "atomic_bool", "atomic_int", "atomic_uint",
    "atomic_size_t", "atomic_uint64_t", "atomic_int64_t", "mutex",
    "shared_mutex", "recursive_mutex", "once_flag", "condition_variable",
})
_DECL_EXEMPT = frozenset({"const", "constexpr", "consteval", "constinit",
                          "thread_local"}) | _SYNC_TYPES


def check_file(source, index):
    toks = source.tokens
    findings = []
    findings.extend(_check_nondet_iteration(source, toks, index))
    findings.extend(_check_pointer_order(source, toks, index))
    findings.extend(_check_ambient(source, toks))
    findings.extend(_check_callback_lifetime(source, toks))
    findings.extend(_check_shared_static(source, toks))
    findings.extend(_check_silent_default(source, toks))
    findings.extend(_check_raw_new_delete(source, toks))
    return findings


# -- nondet-iteration --------------------------------------------------

def _check_nondet_iteration(source, toks, index):
    findings = []
    n = len(toks)
    for i in range(n - 1):
        if not (toks[i].kind == "id" and toks[i].text == "for"
                and toks[i + 1].text == "("):
            continue
        close = match_forward(toks, i + 1, "(", ")")
        head = toks[i + 2:close - 1]
        container = _unordered_range_name(source, head, index)
        if container is None:
            continue
        loop_vars = _loop_var_names(head)
        body_end = _body_span(toks, close)
        body = toks[close:body_end]
        effect, append_target = _body_effects(body, loop_vars)
        if effect == "append" and _sorted_after(toks, body_end,
                                                append_target):
            continue
        if effect is None:
            continue
        findings.append(make_finding(
            source.path, toks[i].line, "nondet-iteration",
            "range-for over unordered container `%s' %s; iteration "
            "order is implementation-defined (snapshot keys and sort, "
            "or key by a stable id)" % (container, effect
                                        if effect != "append"
                                        else "collects into `%s' which "
                                        "is never sorted" % append_target)))
    return findings


def _unordered_range_name(source, head, index):
    """The container name if this range-for head iterates an
    unordered container, else None."""
    # Locate the top-level ':' separating declaration from range.
    depth = 0
    colon = -1
    for k, t in enumerate(head):
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == ";" and depth == 0:
            return None  # classic for
        elif t.text == ":" and depth == 0:
            colon = k
            break
    if colon < 0:
        return None
    expr = head[colon + 1:]
    if not expr:
        return None
    # Accessor-mediated: any `name(` where name returns unordered&.
    for k in range(len(expr) - 1):
        if (expr[k].kind == "id" and expr[k + 1].text == "("
                and expr[k].text in index.unordered_accessors):
            return expr[k].text + "()"
    # Plain member-access chain: ids joined by . -> :: (and `this`).
    if all(t.kind == "id" or t.text in (".", "->", "::") for t in expr):
        last = expr[-1]
        if last.kind == "id" and index.is_unordered(source.path,
                                                   last.text):
            return last.text
    return None


def _loop_var_names(head):
    """Names bound by the loop declaration (incl. structured
    bindings); mutations rooted at these are per-element and benign."""
    names = set()
    depth = 0
    for k, t in enumerate(head):
        if t.text == ":" and depth == 0:
            break
        if t.text in ("(", "[", "{"):
            depth += 1
            continue
        if t.text in (")", "]", "}"):
            depth -= 1
            continue
        if t.kind == "id":
            nxt = head[k + 1].text if k + 1 < len(head) else ":"
            if nxt in (":", ",", "]"):
                names.add(t.text)
    return names


def _body_span(toks, i):
    """Index past the loop body starting at toks[i] (the token after
    the range-for's closing paren)."""
    if i < len(toks) and toks[i].text == "{":
        return match_forward(toks, i, "{", "}")
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t in ("(", "{", "["):
            depth += 1
        elif t in (")", "}", "]"):
            depth -= 1
        elif t == ";" and depth == 0:
            return i + 1
        i += 1
    return i


def _body_effects(body, loop_vars):
    """Classify the loop body: 'schedules events' / 'emits records' /
    'mutates external state' / 'append' (single append target, maybe
    sanitized by a later sort) / None for an order-independent body."""
    append_targets = set()
    other = None
    for k, t in enumerate(body):
        nxt = body[k + 1].text if k + 1 < len(body) else ""
        if t.kind != "id":
            if t.text == "<<" and k > 0 and body[k - 1].kind == "id" \
                    and body[k - 1].text in rules.STREAM_NAMES:
                other = "emits records"
            continue
        if nxt != "(":
            continue
        if t.text in rules.SCHEDULING_CALLS:
            return "schedules events", None
        if t.text in rules.EMITTING_CALLS or t.text.startswith("TRACE_"):
            other = "emits records"
        elif t.text in rules.MUTATING_CALLS and k > 0 \
                and body[k - 1].text in (".", "->"):
            root = _chain_root(body, k - 1)
            if root in loop_vars:
                continue
            if t.text in rules.APPENDING_CALLS:
                append_targets.add(root)
            else:
                other = "mutates external state"
    if other:
        return other, None
    if len(append_targets) == 1:
        return "append", next(iter(append_targets))
    if append_targets:
        return "mutates external state", None
    return None, None


def _chain_root(body, k):
    """Root identifier of the access chain ending at body[k] ('.' or
    '->'): walks back over  id . -> ( ) [ ]  pairs."""
    root = None
    while k >= 0:
        t = body[k]
        if t.kind == "id":
            root = t.text
            if k == 0 or body[k - 1].text not in (".", "->", "::"):
                break
            k -= 1
        elif t.text in (".", "->", "::", ")", "]"):
            k -= 1
        else:
            break
    return root


def _sorted_after(toks, body_end, target):
    """True if `target` is std::sort'ed shortly after the loop — the
    snapshot-and-sort idiom."""
    for k in range(body_end, min(body_end + 100, len(toks) - 1)):
        if toks[k].kind == "id" and toks[k].text in ("sort", "stable_sort") \
                and toks[k + 1].text == "(":
            close = match_forward(toks, k + 1, "(", ")")
            if any(t.kind == "id" and t.text == target
                   for t in toks[k + 1:close]):
                return True
    return False


# -- pointer-order -----------------------------------------------------

def _check_pointer_order(source, toks, index):
    findings = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text in ("map", "set", "multimap", "multiset") \
                and _std_qualified(toks, i) \
                and i + 1 < n and toks[i + 1].text == "<":
            key = _first_template_arg(toks, i + 1)
            if key and key[-1].text == "*":
                findings.append(make_finding(
                    source.path, t.line, "pointer-order",
                    "std::%s keyed by raw pointer `%s': ordering "
                    "follows the allocator/ASLR, not the model; key "
                    "by a stable id" % (t.text, _spell(key))))
        elif t.text == "hash" and _std_qualified(toks, i) \
                and i + 1 < n and toks[i + 1].text == "<":
            arg = _first_template_arg(toks, i + 1)
            if arg and arg[-1].text == "*":
                findings.append(make_finding(
                    source.path, t.line, "pointer-order",
                    "std::hash of raw pointer `%s': the hash value is "
                    "the address" % _spell(arg)))
        elif t.text == "reinterpret_cast" and i + 1 < n \
                and toks[i + 1].text == "<":
            end = skip_template_args(toks, i + 1)
            if end > 0 and any(x.text in ("uintptr_t", "intptr_t")
                               for x in toks[i + 1:end]):
                findings.append(make_finding(
                    source.path, t.line, "pointer-order",
                    "pointer cast to integer: the value is an "
                    "address and differs run to run"))
        elif t.text in ("sort", "stable_sort", "nth_element") \
                and i + 1 < n and toks[i + 1].text == "(":
            close = match_forward(toks, i + 1, "(", ")")
            hit = next((x.text for x in toks[i + 2:close - 1]
                        if x.kind == "id"
                        and x.text in index.pointer_sequences), None)
            if hit:
                findings.append(make_finding(
                    source.path, t.line, "pointer-order",
                    "sorting `%s', a sequence of raw pointers, orders "
                    "by address; sort by a stable key instead" % hit))
    return findings


def _std_qualified(toks, i):
    return (i >= 2 and toks[i - 1].text == "::"
            and toks[i - 2].text == "std")


def _first_template_arg(toks, i):
    """Tokens of the first top-level template argument of the list
    opening at toks[i] == '<'."""
    end = skip_template_args(toks, i)
    if end < 0:
        return None
    depth = 0
    out = []
    for t in toks[i + 1:end - 1]:
        if t.text in ("<", "("):
            depth += 1
        elif t.text in (">", ")"):
            depth -= 1
        elif t.text == "," and depth == 0:
            break
        out.append(t)
    return out


def _spell(tokens):
    return " ".join(t.text for t in tokens).replace(" ::", "::") \
        .replace(":: ", "::").replace(" *", "*").replace(" <", "<") \
        .replace("< ", "<").replace(" >", ">")


# -- ambient-time-randomness -------------------------------------------

def _check_ambient(source, toks):
    findings = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        prev = toks[i - 1] if i > 0 else None
        if t.text in rules.AMBIENT_TYPES:
            findings.append(make_finding(
                source.path, t.line, "ambient-time-randomness",
                "`%s' is an ambient randomness/clock source; use "
                "dcs::Rng / EventQueue::now()" % t.text))
            continue
        if t.text == "chrono" and prev is not None \
                and prev.text == "::" and i >= 2 \
                and toks[i - 2].text == "std":
            findings.append(make_finding(
                source.path, t.line, "ambient-time-randomness",
                "std::chrono in simulation code: simulated time comes "
                "from EventQueue::now()"))
            continue
        if t.text not in rules.AMBIENT_CALLS:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        if prev is not None:
            if prev.text in (".", "->"):
                continue  # member call on some object
            if prev.text == "::" and not (i >= 2
                                          and toks[i - 2].text == "std"):
                # `util::time(...)`: a user function in a namespace.
                # `::time(...)` (global) falls through and is flagged,
                # including after expression keywords (`return ::time`).
                if i >= 2 and toks[i - 2].kind == "id" \
                        and toks[i - 2].text not in _EXPR_CONTEXT_IDS:
                    continue
            if prev.kind == "id" and prev.text not in _EXPR_CONTEXT_IDS:
                continue  # a declaration like `int time(int)`
        findings.append(make_finding(
            source.path, t.line, "ambient-time-randomness",
            "call to wall-clock/ambient-randomness function `%s'; "
            "use EventQueue::now() / dcs::Rng" % t.text))
    return findings


# -- callback-lifetime -------------------------------------------------

def _check_callback_lifetime(source, toks):
    findings = []
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
            continue
        if t.text not in rules.SCHEDULING_CALLS \
                and t.text != "InlineCallback":
            continue
        close = match_forward(toks, i + 1, "(", ")")
        k = i + 2
        while k < close:
            if toks[k].text == "[" and toks[k - 1].text in ("(", ",") \
                    and k + 1 < n and toks[k + 1].text != "[":
                cap_end = match_forward(toks, k, "[", "]")
                caps = toks[k + 1:cap_end - 1]
                ref = next((c for c in caps if c.text == "&"), None)
                if ref is not None and _is_lambda_intro(toks, cap_end):
                    findings.append(make_finding(
                        source.path, ref.line, "callback-lifetime",
                        "deferred callback captures by reference; the "
                        "referent can die before the event fires — "
                        "capture by value (or a stable id) instead"))
                k = cap_end
                continue
            k += 1
    return findings


def _is_lambda_intro(toks, after_bracket):
    """True when the bracketed group ending before `after_bracket` is
    a lambda introducer (followed by '(' params, '{' body, or
    'mutable')."""
    if after_bracket >= len(toks):
        return False
    return toks[after_bracket].text in ("(", "{", "mutable", "->")


# -- unsafe-shared-static ----------------------------------------------

def _check_shared_static(source, toks):
    findings = []
    findings.extend(_statics(source, toks))
    findings.extend(_namespace_globals(source, toks))
    return findings


def _statics(source, toks):
    findings = []
    n = len(toks)
    for i, t in enumerate(toks):
        if not (t.kind == "id" and t.text == "static"):
            continue
        decl = []
        stop = None
        k = i + 1
        while k < n:
            x = toks[k]
            if x.text in (";", "=", "{", "("):
                stop = x.text
                break
            decl.append(x)
            k += 1
        if stop in ("(", None):
            continue  # function declaration/definition
        if any(d.text in _DECL_EXEMPT for d in decl):
            continue
        if not decl or decl[-1].kind != "id":
            continue
        if _thread_safe_annotated(source, t.line, findings):
            continue
        findings.append(make_finding(
            source.path, t.line, "unsafe-shared-static",
            "mutable static `%s' is shared across parallel bench "
            "tasks; make it std::atomic/thread_local, or annotate "
            "DCS_THREAD_SAFE(\"why\") if access is provably "
            "synchronized" % decl[-1].text))
    return findings


def _namespace_globals(source, toks):
    """Mutable `Type name = init;` at namespace scope in a .cc —
    internal-linkage-by-anon-namespace state is as shared as an
    explicit static."""
    findings = []
    if source.path.suffix not in (".cc", ".cpp", ".cxx"):
        return findings
    scope = []  # 'ns' | 'other'
    n = len(toks)
    stmt = i = 0
    while i < n:
        t = toks[i]
        if t.text == "{":
            head = toks[stmt:i]
            kinds = [h.text for h in head if h.kind == "id"]
            if kinds[:1] == ["namespace"]:
                scope.append("ns")
            else:
                scope.append("other")
            stmt = i + 1
        elif t.text == "}":
            if scope:
                scope.pop()
            stmt = i + 1
        elif t.text == ";":
            head = toks[stmt:i]
            if all(s == "ns" for s in scope):
                f = _mutable_global(source, head)
                if f is not None:
                    findings.append(f)
            stmt = i + 1
        elif t.text == "=" and i + 1 < n and toks[i + 1].text == "{":
            # `Type name = {...};` — treat the braced init as part of
            # the statement, not a scope.
            i = match_forward(toks, i + 1, "{", "}")
            continue
        i += 1
    return findings


_GLOBAL_SKIP = frozenset({
    "const", "constexpr", "consteval", "constinit", "thread_local",
    "using", "typedef", "namespace", "class", "struct", "enum",
    "union", "template", "operator", "extern", "static", "friend",
    "return",
}) | _SYNC_TYPES


def _mutable_global(source, head):
    eq = next((k for k, t in enumerate(head) if t.text == "="), None)
    if eq is None or eq == 0:
        return None
    prefix = head[:eq]
    if any(t.text in _GLOBAL_SKIP for t in prefix):
        return None
    if any(t.text in ("(", ")") for t in prefix):
        return None
    if prefix[-1].kind != "id" or len(prefix) < 2:
        return None
    line = prefix[-1].line
    findings = []
    if _thread_safe_annotated(source, line, findings):
        return None
    if findings:
        return findings[0]
    return make_finding(
        source.path, line, "unsafe-shared-static",
        "mutable namespace-scope `%s' is shared across parallel "
        "bench tasks; make it std::atomic/thread_local, or annotate "
        "DCS_THREAD_SAFE(\"why\") if access is provably "
        "synchronized" % prefix[-1].text)


def _thread_safe_annotated(source, line, findings):
    """True if a DCS_THREAD_SAFE("reason") annotation covers `line`
    (same line or up to two lines above). A reason shorter than 10
    characters is rejected as a bad-waiver."""
    import re
    for ln in range(max(1, line - 2), line + 1):
        text = source.line_text(ln)
        m = re.search(r"DCS_THREAD_SAFE\s*\(\s*\"([^\"]*)\"", text)
        if not m:
            if rules.THREAD_SAFE_MACRO in text:
                findings.append(make_finding(
                    source.path, ln, "bad-waiver",
                    "DCS_THREAD_SAFE requires a quoted justification "
                    "string"))
                return True
            continue
        if len(m.group(1).strip()) < 10:
            findings.append(make_finding(
                source.path, ln, "bad-waiver",
                "DCS_THREAD_SAFE justification is too short; say why "
                "the access is safe"))
            return True
        return True
    return False


# -- silent-switch-default ---------------------------------------------

def _check_silent_default(source, toks):
    findings = []
    n = len(toks)
    for i, t in enumerate(toks):
        if not (t.kind == "id" and t.text == "default"):
            continue
        if i > 0 and toks[i - 1].text == "=":
            continue  # defaulted special member
        if i + 1 >= n or toks[i + 1].text != ":":
            continue
        body = []
        depth = 0
        k = i + 2
        while k < n:
            x = toks[k]
            if x.text in ("{", "(", "["):
                depth += 1
            elif x.text in (")", "]"):
                depth -= 1
            elif x.text == "}":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and x.kind == "id" and x.text == "case":
                break
            body.append(x)
            k += 1
        texts = [b.text for b in body]
        if texts in ([], ["break", ";"], [";"]):
            findings.append(make_finding(
                source.path, t.line, "silent-switch-default",
                "default: swallows impossible values silently; "
                "panic() on cases that cannot happen"))
    return findings


# -- raw-new-delete ----------------------------------------------------

def _check_raw_new_delete(source, toks):
    findings = []
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("new", "delete"):
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev == "operator":
            continue
        if t.text == "new":
            findings.append(make_finding(
                source.path, t.line, "raw-new-delete",
                "raw `new' (use std::make_unique or a value member)"))
        else:
            if prev == "=":
                continue  # deleted function
            findings.append(make_finding(
                source.path, t.line, "raw-new-delete",
                "raw `delete' (ownership belongs in smart pointers)"))
    return findings
