"""A small C++ tokenizer for the syntax engine.

Produces (kind, text, line) tokens with comments, strings and
preprocessor line noise stripped but line numbers preserved, which is
all the syntax engine needs: rule logic works on token shapes, never
on raw source lines, so identifiers like `timeout` can never be
mistaken for `time`.
"""

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])

# kinds: id num str chr punc
_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<lcom>//[^\n]*)
    | (?P<bcom>/\*.*?\*/)
    | (?P<raw>R"([^()\s\\]{0,16})\(.*?\)\2")
    | (?P<str>"(?:[^"\\\n]|\\.)*")
    | (?P<chr>'(?:[^'\\\n]|\\.)*')
    | (?P<num>\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punc><<=|>>=|<=>|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=
               |&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|.)
    """,
    re.VERBOSE | re.DOTALL)

_PP_RE = re.compile(r"^[ \t]*#(?:[^\n\\]|\\\n)*", re.MULTILINE)


def tokenize(text):
    """Tokenize C++ source, dropping comments and preprocessor lines.

    Preprocessor directives are blanked (their macro *uses* in normal
    code still tokenize); line numbers of everything else survive.
    """
    # Blank preprocessor directives but keep their newlines.
    def _blank(m):
        return "".join(c if c == "\n" else " " for c in m.group(0))

    text = _PP_RE.sub(_blank, text)

    tokens = []
    line = 1
    pos = 0
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if not m:  # stray byte; skip it
            if text[pos] == "\n":
                line += 1
            pos += 1
            continue
        kind = m.lastgroup
        tok = m.group(0)
        if kind in ("id", "num", "punc"):
            tokens.append(Token(kind, tok, line))
        elif kind in ("str", "raw"):
            tokens.append(Token("str", tok, line))
        elif kind == "chr":
            tokens.append(Token("chr", tok, line))
        line += tok.count("\n")
        pos = m.end()
    return tokens


def match_forward(tokens, i, open_tok, close_tok):
    """Index just past the token matching tokens[i] == open_tok."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_tok:
            depth += 1
        elif t == close_tok:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def skip_template_args(tokens, i):
    """Given tokens[i] == '<', index just past the matching '>'.

    Handles '>>' closing two levels and bails out on tokens that make
    a template-argument reading impossible (';', '{').
    """
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{"):
            return -1
        i += 1
    return -1
