"""dcslint command line.

    python3 tools/dcslint [options] PATH [PATH...]

Options:
    --engine auto|clang|syntax   engine selection (default auto: the
                                 libclang engine when clang.cindex and
                                 a libclang shared object are present,
                                 else the zero-dependency syntax
                                 engine)
    --compdb DIR                 directory holding compile_commands.json
                                 (clang engine; default: build/)
    --json FILE                  write the findings report (- = stdout)
    --baseline FILE              baseline file (default:
                                 tools/dcslint/baseline.json)
    --update-baseline            rewrite the baseline from current
                                 findings and exit 0
    --list-rules                 print the rule catalog and exit
    --exclude SUBSTR             skip paths containing SUBSTR (repeat;
                                 default: tests/lint_fixtures)
    --quiet                      suppress the summary line

Exit status: 0 clean, 1 findings survived waivers+baseline, 2 usage
or environment error.
"""

import argparse
import json
import pathlib
import sys

from dcslint import baseline as baseline_mod
from dcslint import index as index_mod
from dcslint import rules
from dcslint.source import SourceFile, finding_key


def _gather(paths, excludes):
    files = []
    for p in paths:
        p = pathlib.Path(p)
        if p.is_dir():
            for pat in ("*.cc", "*.cpp", "*.cxx", "*.hh", "*.hpp", "*.h"):
                files.extend(sorted(p.rglob(pat)))
        elif p.exists():
            files.append(p)
        else:
            raise SystemExit("dcslint: no such path: %s" % p)
    out = []
    seen = set()
    for f in files:
        s = str(f)
        if s in seen or any(e in s for e in excludes):
            continue
        seen.add(s)
        out.append(f)
    return out


def _select_engine(requested):
    """Resolve 'auto' to the best available engine name."""
    if requested in ("clang", "auto"):
        try:
            from dcslint import engine_clang
            if engine_clang.available():
                return "clang"
        except Exception as exc:  # ImportError, missing libclang.so, ...
            if requested == "clang":
                raise SystemExit(
                    "dcslint: clang engine unavailable (%s); install "
                    "libclang or use --engine syntax" % exc)
    if requested == "clang":
        raise SystemExit("dcslint: clang engine unavailable; install "
                         "libclang or use --engine syntax")
    return "syntax"


def run(argv):
    parser = argparse.ArgumentParser(
        prog="dcslint", description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path)
    parser.add_argument("--engine", choices=("auto", "clang", "syntax"),
                        default="auto")
    parser.add_argument("--compdb", default="build")
    parser.add_argument("--json", dest="json_out")
    parser.add_argument("--baseline",
                        default=str(baseline_mod.DEFAULT_PATH))
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--exclude", action="append", default=[])
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in rules.RULES:
            print("%-24s %-8s %s" % (r.id, r.severity, r.summary))
        return 0
    if not args.paths:
        parser.error("no paths given")

    excludes = args.exclude or ["tests/lint_fixtures"]
    files = _gather(args.paths, excludes)
    sources = [SourceFile(f) for f in files]
    by_path = {str(s.path): s for s in sources}

    engine = _select_engine(args.engine)
    if engine == "clang":
        from dcslint.engine_clang import ClangEngine
        eng = ClangEngine(args.compdb, pathlib.Path.cwd())
        findings = eng.check_files(sources)
    else:
        from dcslint import engine_syntax
        proj = index_mod.build(sources)
        findings = []
        for src in sources:
            findings.extend(engine_syntax.check_file(src, proj))

    # Waiver comments are engine-independent.
    kept = []
    waived = 0
    for f in findings:
        src = by_path.get(f.file)
        if src is not None and src.waived(f):
            waived += 1
        else:
            kept.append(f)
    for src in sources:
        kept.extend(src.waiver_findings)

    if args.update_baseline:
        baseline_mod.save(args.baseline, kept, by_path)
        if not args.quiet:
            print("dcslint: baseline updated with %d entry(ies)"
                  % len(kept))
        return 0

    known = baseline_mod.load(args.baseline)
    fresh = []
    baselined = 0
    for f in kept:
        if finding_key(f, by_path.get(f.file)) in known:
            baselined += 1
        else:
            fresh.append(f)
    fresh.sort(key=lambda f: (f.file, f.line, f.rule))

    report = {
        "version": 1,
        "engine": engine,
        "files": len(sources),
        "findings": [f._asdict() for f in fresh],
        "waived": waived,
        "baselined": baselined,
    }
    if args.json_out:
        text = json.dumps(report, indent=2) + "\n"
        if args.json_out == "-":
            sys.stdout.write(text)
        else:
            pathlib.Path(args.json_out).write_text(text,
                                                   encoding="utf-8")

    for f in fresh:
        print("%s:%d: [%s/%s] %s"
              % (f.file, f.line, f.rule, f.severity, f.message))
    if not args.quiet:
        print("dcslint[%s]: %d file(s), %d finding(s), %d waived, "
              "%d baselined"
              % (engine, len(sources), len(fresh), waived, baselined))
    return 1 if fresh else 0
