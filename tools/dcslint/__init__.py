"""dcslint — AST-level determinism & parallel-readiness analyzer.

Static analysis specialized for deterministic parallel discrete-event
simulation. Two engines implement one rule catalog (dcslint/rules.py):

  clang   libclang (clang.cindex) driven by compile_commands.json —
          type-accurate; used by CI, which installs a pinned libclang.
  syntax  zero-dependency token-level analyzer with a cross-file
          symbol index — runs anywhere Python runs; the automatic
          fallback when libclang is unavailable.

Entry point: ``python3 tools/dcslint <paths>`` (see cli.py), or import
``dcslint.cli``. tools/simlint.py remains the last-resort fallback if
this package itself cannot run (see tools/lint_gate.py).
"""

__version__ = "1.0"
