"""Checked-in baseline of accepted findings.

The baseline exists so the gate can be turned on before every legacy
finding is burned down; entries are content-addressed
(file|rule|sha1-of-line-text) so unrelated edits do not invalidate
them. The project policy (docs/VERIFICATION.md) is a zero baseline:
new findings are fixed or waived with a justification, and the
checked-in file stays empty. Regenerate with --update-baseline.
"""

import json
import pathlib

from dcslint.source import finding_key

DEFAULT_PATH = pathlib.Path(__file__).resolve().parent / "baseline.json"


def load(path):
    path = pathlib.Path(path)
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != 1:
        raise SystemExit("dcslint: unsupported baseline version in %s"
                         % path)
    return set(data.get("entries", []))


def save(path, findings, sources):
    entries = sorted(finding_key(f, sources.get(f.file))
                     for f in findings)
    payload = {"version": 1, "entries": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
