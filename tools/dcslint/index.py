"""Cross-file symbol index for the syntax engine.

The retired regex lint could only connect an unordered container
declaration to a loop when both sat in the same file. Real hazards
cross files: the member is declared in a header, iterated in a .cc,
or reached through an accessor. This index scans every file in the
lint set once and records container declarations by name *and* by
file, so a use site resolves against its own file and paired header
first — two classes reusing a member name with different container
kinds (e.g. an ordered `conns` in tcp.hh and an unordered `conns` in
nic_controller.hh) do not contaminate each other.
"""

import pathlib

from dcslint.lexer import skip_template_args

_UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset")
_ORDERED = ("map", "set", "multimap", "multiset", "vector", "deque",
            "list", "array")
_HDR_EXTS = (".hh", ".hpp", ".h")


class ProjectIndex:
    def __init__(self):
        # name -> set of kinds ('unordered'|'ordered') anywhere
        self.kinds = {}
        # (file-stem, name) -> set of kinds declared in that file
        self.file_kinds = {}
        self.unordered_accessors = set()
        self.pointer_sequences = set()

    def scan(self, source):
        stem = _stem(source.path)
        toks = source.tokens
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in _UNORDERED:
                i = self._scan_container(toks, i, n, stem, "unordered")
            elif t.kind == "id" and t.text in _ORDERED:
                i = self._scan_container(toks, i, n, stem, "ordered")
            else:
                i += 1

    def is_unordered(self, path, name):
        """Does `name` denote an unordered container at a use site in
        `path`? File-local (incl. paired header) declarations win;
        project-wide knowledge applies only when unambiguous."""
        local = set()
        for s in _related_stems(path):
            local |= self.file_kinds.get((s, name), set())
        if local:
            return local == {"unordered"}
        kinds = self.kinds.get(name, set())
        return kinds == {"unordered"}

    def _scan_container(self, toks, i, n, stem, kind):
        # X<args> [&|*|const]* name [;={,()]   — declaration/accessor
        j = i + 1
        if j >= n or toks[j].text != "<":
            return i + 1
        j = skip_template_args(toks, j)
        if j < 0:
            return i + 1
        arg_first = self._first_arg(toks, i + 1)
        is_ref = False
        while j < n and toks[j].text in ("&", "*", "const"):
            is_ref = is_ref or toks[j].text == "&"
            j += 1
        if j < n and toks[j].kind == "id":
            name = toks[j].text
            nxt = toks[j + 1].text if j + 1 < n else ""
            if nxt == "(" and is_ref and kind == "unordered":
                self.unordered_accessors.add(name)
            elif nxt in (";", "=", "{", ",", ")"):
                self.kinds.setdefault(name, set()).add(kind)
                self.file_kinds.setdefault((stem, name), set()).add(kind)
                if kind == "ordered" and arg_first \
                        and arg_first[-1].text == "*":
                    self.pointer_sequences.add(name)
        return j + 1

    @staticmethod
    def _first_arg(toks, i):
        end = skip_template_args(toks, i)
        if end < 0:
            return None
        depth = 0
        out = []
        for t in toks[i + 1:end - 1]:
            if t.text in ("<", "("):
                depth += 1
            elif t.text in (">", ")"):
                depth -= 1
            elif t.text == "," and depth == 0:
                break
            out.append(t)
        return out


def _stem(path):
    p = pathlib.Path(path)
    return str(p.parent / p.stem)


def _related_stems(path):
    """The file's own stem — shared with its paired header/source
    (src/host/tcp.cc and src/host/tcp.hh both map to src/host/tcp)."""
    return [_stem(path)]


def build(sources):
    index = ProjectIndex()
    for src in sources:
        index.scan(src)
    return index
