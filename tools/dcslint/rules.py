"""The dcslint rule catalog, shared by both engines.

Each rule answers one question about a hazard class that silently
breaks deterministic (and soon: parallel) discrete-event simulation.
The catalog is the single source of truth for rule ids, severities and
descriptions; docs/VERIFICATION.md renders the same table.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    id: str
    severity: str  # "error" | "warning" — both gate; metadata + filter
    summary: str


RULES = [
    Rule(
        "nondet-iteration", "error",
        "iteration over an unordered_* container (including members "
        "declared in headers and containers reached through accessors) "
        "whose loop body schedules events, mutates simulation state, or "
        "emits stats/trace/output records"),
    Rule(
        "pointer-order", "error",
        "ordering, container keying, or hashing by raw pointer value: "
        "std::map/std::set keyed by a pointer type, std::hash of a "
        "pointer, pointer casts to integers, or relational comparison "
        "of unrelated pointers — all ASLR-dependent"),
    Rule(
        "ambient-time-randomness", "error",
        "wall-clock or ambient randomness (time(), std::chrono clocks, "
        "rand(), std::random_device, std engines) in simulation code; "
        "simulated time comes from EventQueue::now(), randomness from "
        "dcs::Rng"),
    Rule(
        "callback-lifetime", "error",
        "a deferred callback (schedule()/scheduleAt()/InlineCallback) "
        "capturing by reference: the stack frame is gone when the "
        "event fires"),
    Rule(
        "unsafe-shared-static", "error",
        "mutable non-atomic, non-thread_local global/static state "
        "reachable from the parallel bench runner; annotate genuinely "
        "safe cases with DCS_THREAD_SAFE(\"why\")"),
    Rule(
        "silent-switch-default", "warning",
        "a default: label that only breaks swallows impossible enum "
        "values; impossible cases must panic()"),
    Rule(
        "raw-new-delete", "warning",
        "manual new/delete in model code leaks on panic() paths; use "
        "std::make_unique or value members"),
    Rule(
        "bad-waiver", "error",
        "a dcslint allow-comment naming an unknown rule or missing the "
        "required justification text"),
]

RULE_IDS = [r.id for r in RULES]
BY_ID = {r.id: r for r in RULES}

# ---------------------------------------------------------------------
# Shared heuristics (kept here so both engines and the docs agree).

#: Calls that put work on the event queue — anything ordered by them
#: inherits the iteration order of the surrounding loop.
SCHEDULING_CALLS = frozenset({"schedule", "scheduleAt", "deschedule"})

#: Calls that emit an externally observable record (stats samples,
#: trace records, text output) whose order is part of the output.
EMITTING_CALLS = frozenset({
    "record", "sample", "observe", "addCounter", "addValue",
    "printf", "fprintf", "puts", "fputs", "inform", "warn",
})

#: Stream objects: `x << ...` on one of these emits output.
STREAM_NAMES = frozenset({"cout", "cerr", "clog", "os", "out", "oss"})

#: Member calls that mutate a container (ordering its contents by the
#: loop's iteration order when the target outlives the loop).
MUTATING_CALLS = frozenset({
    "push_back", "push_front", "pop_back", "pop_front", "emplace",
    "emplace_back", "emplace_front", "insert", "erase", "clear",
})

#: Appends recognized by the snapshot-and-sort idiom: a loop that only
#: appends to one local container which is std::sort'ed immediately
#: after is order-independent and not flagged.
APPENDING_CALLS = frozenset({"push_back", "emplace_back", "insert"})

#: Ambient time/randomness: these C calls are hazards when called as
#: plain functions (exact-token match — `timeout(` and `timing(` are
#: fine, unlike the retired regex lint).
AMBIENT_CALLS = frozenset({
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
    "rand", "srand", "random", "srandom", "drand48", "lrand48",
    "mrand48", "rand_r",
})

#: Ambient time/randomness: any use of these std identifiers.
AMBIENT_TYPES = frozenset({
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine", "ranlux24", "ranlux48",
})

#: The annotation macro (sim/check.hh) that exempts a static from
#: unsafe-shared-static; must carry a non-empty justification.
THREAD_SAFE_MACRO = "DCS_THREAD_SAFE"
