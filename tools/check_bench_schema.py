#!/usr/bin/env python3
"""Validate bench --json reports against the schema in
docs/OBSERVABILITY.md (schema_version 1 or 2; v2 adds the optional
`timeline[]` time-series section).

Usage: check_bench_schema.py report.json [report2.json ...]

Exits non-zero with a message naming the first violation. Used by the
`bench_schema` ctest and the CI bench-reports job; stdlib only.
"""

import json
import math
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(path, where, v, allow_null=False):
    if v is None and allow_null:
        return
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        fail(path, f"{where}: expected a number, got {v!r}")
    if isinstance(v, float) and not math.isfinite(v):
        fail(path, f"{where}: non-finite value {v!r}")


def check_stats_value(path, where, v):
    """A stat leaf is a number/null, or one more level of nesting
    (distribution fields, breakdown categories)."""
    if isinstance(v, dict):
        for k, sub in v.items():
            check_number(path, f"{where}.{k}", sub, allow_null=True)
    else:
        check_number(path, where, v, allow_null=True)


def check_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    version = doc.get("schema_version")
    if version not in (1, 2):
        fail(path, f"schema_version not in (1, 2): {version!r}")
    if version == 1 and "timeline" in doc:
        fail(path, "'timeline' present but schema_version is 1")
    for key in ("bench", "figure"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail(path, f"'{key}' missing or not a non-empty string")

    headlines = doc.get("headlines")
    if not isinstance(headlines, list) or not headlines:
        fail(path, "'headlines' missing or empty")
    seen = set()
    for i, h in enumerate(headlines):
        where = f"headlines[{i}]"
        if not isinstance(h, dict):
            fail(path, f"{where}: not an object")
        if set(h) != {"name", "value", "unit", "paper", "note"}:
            fail(path, f"{where}: keys are {sorted(h)}")
        if not isinstance(h["name"], str) or not h["name"]:
            fail(path, f"{where}: bad name {h['name']!r}")
        if h["name"] in seen:
            fail(path, f"{where}: duplicate name {h['name']!r}")
        seen.add(h["name"])
        check_number(path, f"{where}.value", h["value"])
        check_number(path, f"{where}.paper", h["paper"], allow_null=True)
        for key in ("unit", "note"):
            if not isinstance(h[key], str):
                fail(path, f"{where}: '{key}' is not a string")

    curves = doc.get("curves", [])
    if not isinstance(curves, list):
        fail(path, "'curves' is not a list")
    curve_names = set()
    for i, c in enumerate(curves):
        where = f"curves[{i}]"
        if not isinstance(c, dict) or set(c) != {"name", "points"}:
            fail(path, f"{where}: expected {{name, points}} object")
        if not isinstance(c["name"], str) or not c["name"]:
            fail(path, f"{where}: bad name {c['name']!r}")
        if c["name"] in curve_names:
            fail(path, f"{where}: duplicate name {c['name']!r}")
        curve_names.add(c["name"])
        points = c["points"]
        if not isinstance(points, list) or not points:
            fail(path, f"{where}: 'points' missing or empty")
        # Field names must be consistent across a curve's points.
        fields = None
        for j, pt in enumerate(points):
            pwhere = f"{where}.points[{j}]"
            if not isinstance(pt, dict):
                fail(path, f"{pwhere}: not an object")
            if "x" not in pt or len(pt) < 2:
                fail(path, f"{pwhere}: needs 'x' plus >=1 field")
            check_number(path, f"{pwhere}.x", pt["x"])
            for k, v in pt.items():
                if k == "x":
                    continue
                check_number(path, f"{pwhere}.{k}", v, allow_null=True)
            if fields is None:
                fields = set(pt)
            elif set(pt) != fields:
                fail(path, f"{pwhere}: fields {sorted(pt)} differ from "
                           f"first point's {sorted(fields)}")

    timelines = doc.get("timeline", [])
    if not isinstance(timelines, list):
        fail(path, "'timeline' is not a list")
    tl_names = set()
    for i, t in enumerate(timelines):
        where = f"timeline[{i}]"
        if not isinstance(t, dict) or set(t) != {
                "name", "period_us", "dropped_rows", "columns",
                "samples"}:
            fail(path, f"{where}: expected {{name, period_us, "
                       f"dropped_rows, columns, samples}} object")
        if not isinstance(t["name"], str) or not t["name"]:
            fail(path, f"{where}: bad name {t['name']!r}")
        if t["name"] in tl_names:
            fail(path, f"{where}: duplicate name {t['name']!r}")
        tl_names.add(t["name"])
        check_number(path, f"{where}.period_us", t["period_us"])
        if not (isinstance(t["period_us"], (int, float)) and
                t["period_us"] > 0):
            fail(path, f"{where}: period_us not positive")
        check_number(path, f"{where}.dropped_rows", t["dropped_rows"])
        cols = t["columns"]
        if not isinstance(cols, list) or not cols or not all(
                isinstance(c, str) and c for c in cols):
            fail(path, f"{where}: 'columns' must be non-empty strings")
        samples = t["samples"]
        if not isinstance(samples, list):
            fail(path, f"{where}: 'samples' is not a list")
        prev_t = None
        for j, row in enumerate(samples):
            rwhere = f"{where}.samples[{j}]"
            # One row = [t_us, one value per column].
            if not isinstance(row, list) or len(row) != 1 + len(cols):
                fail(path, f"{rwhere}: expected {1 + len(cols)} "
                           f"entries, got {row!r}")
            for k, v in enumerate(row):
                check_number(path, f"{rwhere}[{k}]", v)
            if prev_t is not None and row[0] <= prev_t:
                fail(path, f"{rwhere}: sample times not increasing")
            prev_t = row[0]

    stats = doc.get("stats")
    if not isinstance(stats, dict):
        fail(path, "'stats' missing or not an object")
    for label, groups in stats.items():
        if not isinstance(groups, dict):
            fail(path, f"stats[{label!r}]: not an object")
        for group, leaves in groups.items():
            if not isinstance(leaves, dict):
                fail(path, f"stats[{label!r}][{group!r}]: not an object")
            for stat, v in leaves.items():
                check_stats_value(
                    path, f"stats[{label!r}][{group!r}][{stat!r}]", v)

    n_groups = sum(len(g) for g in stats.values())
    print(f"{path}: ok ({len(headlines)} headlines, {len(curves)} "
          f"curves, {len(timelines)} timelines, {len(stats)} stats "
          f"labels, {n_groups} groups)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in sys.argv[1:]:
        check_report(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
