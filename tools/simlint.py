#!/usr/bin/env python3
"""Simulator-specific hazard lint for the DCS-ctrl codebase.

Generic linters do not know what breaks a deterministic discrete-event
simulator. This one checks exactly that:

  wall-clock             Real-time sources (std::chrono, time(), rand(),
                         std::random_device, ...) make runs
                         irreproducible. Simulated time comes from
                         EventQueue::now(); randomness from dcs::Rng.
  unordered-iteration    Iterating an unordered_{map,set} produces an
                         implementation-defined order; if anything
                         schedule()s or mutates state inside such a
                         loop, two runs diverge.
  raw-new-delete         Manual new/delete in model code leaks on the
                         panic() paths; use std::make_unique / values.
  silent-switch-default  A default: that only breaks swallows impossible
                         enum values; impossible cases must panic().

Findings can be locally waived with a comment on the same or preceding
line:   // simlint: allow(<rule>)  -- include a justification.

Usage: simlint.py [--quiet] PATH [PATH...]
Exit status is 0 when clean, 1 when any finding survives.
"""

import argparse
import pathlib
import re
import sys

RULES = (
    "wall-clock",
    "unordered-iteration",
    "raw-new-delete",
    "silent-switch-default",
)

ALLOW_RE = re.compile(r"simlint:\s*allow\(([a-z-]+)\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono\b"
    r"|\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|std::random_device\b"
    r"|\b(?:time|clock|rand|srand|gettimeofday|clock_gettime)\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>\s+(\w+)\s*[;={]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*(?:this->)?(\w+)\s*\)")

NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(:]")
DELETE_RE = re.compile(r"\bdelete\s*(?:\[\s*\])?\s+?[A-Za-z_(*]|\bdelete\s+\w")
DELETED_FN_RE = re.compile(r"=\s*delete\b")

DEFAULT_LABEL_RE = re.compile(r"(?:^|[\s;{}])default\s*:")


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving layout.

    Keeps every character's line/column so finding positions stay
    accurate. Newlines inside block comments survive.
    """
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "str"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_allows(raw_lines):
    """Map line number -> set of rules waived on that line."""
    allows = {}
    for lineno, line in enumerate(raw_lines, 1):
        for m in ALLOW_RE.finditer(line):
            rule = m.group(1)
            if rule not in RULES:
                allows.setdefault(lineno, set()).add("__bad__" + rule)
                continue
            # An allow covers its own line and the next (comment-above
            # style).
            allows.setdefault(lineno, set()).add(rule)
            allows.setdefault(lineno + 1, set()).add(rule)
    return allows


def check_wall_clock(lines, findings):
    for lineno, line in enumerate(lines, 1):
        m = WALL_CLOCK_RE.search(line)
        if m:
            findings.append(
                (lineno, "wall-clock",
                 "real-time source `%s' in simulation code (use "
                 "EventQueue::now() / dcs::Rng)" % m.group(0).strip()))


def check_unordered_iteration(text, lines, findings):
    unordered_names = set(UNORDERED_DECL_RE.findall(text))
    if not unordered_names:
        return
    for lineno, line in enumerate(lines, 1):
        m = RANGE_FOR_RE.search(line)
        if m and m.group(1) in unordered_names:
            findings.append(
                (lineno, "unordered-iteration",
                 "range-for over unordered container `%s': iteration "
                 "order is implementation-defined" % m.group(1)))


def check_raw_new_delete(lines, findings):
    for lineno, line in enumerate(lines, 1):
        if NEW_RE.search(line):
            findings.append(
                (lineno, "raw-new-delete",
                 "raw `new' (use std::make_unique or a value member)"))
        if DELETE_RE.search(line) and not DELETED_FN_RE.search(line):
            findings.append(
                (lineno, "raw-new-delete",
                 "raw `delete' (ownership belongs in smart pointers)"))


def check_silent_switch_default(lines, findings):
    for idx, line in enumerate(lines):
        m = DEFAULT_LABEL_RE.search(line)
        if not m:
            continue
        # Collect the statement text after `default:` up to the next
        # case label or closing brace.
        body = [line[m.end():]]
        for follow in lines[idx + 1:idx + 6]:
            if re.search(r"\bcase\b|[}]", follow):
                body.append(follow.split("}")[0])
                break
            body.append(follow)
        flat = " ".join(body)
        flat = re.sub(r"\bcase\b.*", "", flat)
        flat = re.sub(r"\s+", " ", flat).strip()
        if flat in ("", "break;", "break ;"):
            findings.append(
                (idx + 1, "silent-switch-default",
                 "default: swallows impossible values silently; "
                 "panic() on cases that cannot happen"))


def lint_file(path):
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    allows = collect_allows(raw_lines)
    stripped = strip_comments_and_strings(raw)
    lines = stripped.splitlines()

    findings = []
    check_wall_clock(lines, findings)
    check_unordered_iteration(stripped, lines, findings)
    check_raw_new_delete(lines, findings)
    check_silent_switch_default(lines, findings)

    kept = []
    for lineno, rule, msg in findings:
        if rule in allows.get(lineno, set()):
            continue
        kept.append((lineno, rule, msg))
    for lineno, waived in allows.items():
        for entry in waived:
            if entry.startswith("__bad__"):
                kept.append(
                    (lineno, "bad-allow",
                     "unknown rule `%s' in simlint allow comment"
                     % entry[len("__bad__"):]))
    return kept


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=pathlib.Path,
                        help="files or directories to lint")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    files = []
    for p in args.paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.cc")))
            files.extend(sorted(p.rglob("*.hh")))
        elif p.exists():
            files.append(p)
        else:
            print("simlint: no such path: %s" % p, file=sys.stderr)
            return 2

    total = 0
    for f in files:
        for lineno, rule, msg in lint_file(f):
            total += 1
            print("%s:%d: [%s] %s" % (f, lineno, rule, msg))
    if not args.quiet:
        print("simlint: %d file(s), %d finding(s)" % (len(files), total))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
