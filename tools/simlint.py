#!/usr/bin/env python3
"""Fallback hazard lint for the DCS-ctrl codebase.

tools/dcslint is the primary analyzer: it runs the same determinism
rules (and more) on a real token stream with a cross-file symbol index,
and on CI against libclang ASTs. This script remains as the
zero-dependency last resort — pure stdlib regexes, no build tree, no
tokenizer — and is auto-selected by the `lint-determinism` ctest gate
only if dcslint cannot run. Its rules are the regex originals that
dcslint subsumes:

  wall-clock             Real-time sources (std::chrono, time(), rand(),
                         std::random_device, ...) make runs
                         irreproducible. Simulated time comes from
                         EventQueue::now(); randomness from dcs::Rng.
  unordered-iteration    Iterating an unordered_{map,set} produces an
                         implementation-defined order; if anything
                         schedule()s or mutates state inside such a
                         loop, two runs diverge.
  raw-new-delete         Manual new/delete in model code leaks on the
                         panic() paths; use std::make_unique / values.
  silent-switch-default  A default: that only breaks swallows impossible
                         enum values; impossible cases must panic().

Findings can be locally waived with a comment on the same or preceding
line:   // simlint: allow(<rule>)  -- include a justification.
dcslint-style waivers are honored too, so one comment serves both
tools:  // dcslint: allow(<rule>): <why>   (or allow-file(...) for the
whole file). dcslint rule ids map onto the local ones
(nondet-iteration -> unordered-iteration, ambient-time-randomness ->
wall-clock); dcslint-only rules are accepted and ignored.

Usage: simlint.py [--quiet] PATH [PATH...]
Exit status is 0 when clean, 1 when any finding survives.
"""

import argparse
import pathlib
import re
import sys

RULES = (
    "wall-clock",
    "unordered-iteration",
    "raw-new-delete",
    "silent-switch-default",
)

ALLOW_RE = re.compile(r"simlint:\s*allow\(([a-z-]+)\)")
DCSLINT_ALLOW_RE = re.compile(
    r"dcslint:\s*allow(-file)?\(([A-Za-z0-9_-]+)\)")

# dcslint rule id -> local rule id. Identity for the shared names;
# dcslint-only rules map to None (accepted, nothing local to waive).
DCSLINT_ALIASES = {
    "nondet-iteration": "unordered-iteration",
    "ambient-time-randomness": "wall-clock",
    "raw-new-delete": "raw-new-delete",
    "silent-switch-default": "silent-switch-default",
}

WALL_CLOCK_RE = re.compile(
    r"std::chrono\b"
    r"|\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|std::random_device\b"
    r"|\b(?:time|clock|rand|srand|gettimeofday|clock_gettime)\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>\s+(\w+)\s*[;={]"
)
# Applied to the whole stripped text (not per line): range-for heads
# regularly wrap across lines, and the per-line version silently missed
# those. [^;()] matches newlines, so a wrapped head still matches; the
# `;` exclusion keeps classic three-clause for() out.
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]*:\s*(?:this->)?(\w+)\s*\)")

NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(:]")
DELETE_RE = re.compile(r"\bdelete\s*(?:\[\s*\])?\s+?[A-Za-z_(*]|\bdelete\s+\w")
DELETED_FN_RE = re.compile(r"=\s*delete\b")

DEFAULT_LABEL_RE = re.compile(r"(?:^|[\s;{}])default\s*:")


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving layout.

    Keeps every character's line/column so finding positions stay
    accurate. Newlines inside block comments survive.
    """
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "str"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_allows(raw_lines):
    """Waivers: (line -> waived rules, file-wide waived rules)."""
    allows = {}
    file_allows = set()

    def add(lineno, rule):
        # An allow covers its own line and the next (comment-above
        # style).
        allows.setdefault(lineno, set()).add(rule)
        allows.setdefault(lineno + 1, set()).add(rule)

    for lineno, line in enumerate(raw_lines, 1):
        for m in ALLOW_RE.finditer(line):
            rule = m.group(1)
            if rule not in RULES:
                allows.setdefault(lineno, set()).add("__bad__" + rule)
                continue
            add(lineno, rule)
        for m in DCSLINT_ALLOW_RE.finditer(line):
            # dcslint validates its own rule ids (bad-waiver); here an
            # unmapped id is simply a rule this fallback does not run.
            rule = DCSLINT_ALIASES.get(m.group(2))
            if rule is None:
                continue
            if m.group(1):
                file_allows.add(rule)
            else:
                add(lineno, rule)
    return allows, file_allows


def check_wall_clock(lines, findings):
    for lineno, line in enumerate(lines, 1):
        m = WALL_CLOCK_RE.search(line)
        if m:
            findings.append(
                (lineno, "wall-clock",
                 "real-time source `%s' in simulation code (use "
                 "EventQueue::now() / dcs::Rng)" % m.group(0).strip()))


def check_unordered_iteration(text, findings):
    unordered_names = set(UNORDERED_DECL_RE.findall(text))
    if not unordered_names:
        return
    for m in RANGE_FOR_RE.finditer(text):
        if m.group(1) not in unordered_names:
            continue
        lineno = text.count("\n", 0, m.start()) + 1
        findings.append(
            (lineno, "unordered-iteration",
             "range-for over unordered container `%s': iteration "
             "order is implementation-defined" % m.group(1)))


def check_raw_new_delete(lines, findings):
    for lineno, line in enumerate(lines, 1):
        if NEW_RE.search(line):
            findings.append(
                (lineno, "raw-new-delete",
                 "raw `new' (use std::make_unique or a value member)"))
        if DELETE_RE.search(line) and not DELETED_FN_RE.search(line):
            findings.append(
                (lineno, "raw-new-delete",
                 "raw `delete' (ownership belongs in smart pointers)"))


def check_silent_switch_default(lines, findings):
    for idx, line in enumerate(lines):
        m = DEFAULT_LABEL_RE.search(line)
        if not m:
            continue
        # Collect the statement text after `default:` up to the next
        # case label or closing brace.
        body = [line[m.end():]]
        for follow in lines[idx + 1:idx + 6]:
            if re.search(r"\bcase\b|[}]", follow):
                body.append(follow.split("}")[0])
                break
            body.append(follow)
        flat = " ".join(body)
        flat = re.sub(r"\bcase\b.*", "", flat)
        flat = re.sub(r"\s+", " ", flat).strip()
        if flat in ("", "break;", "break ;"):
            findings.append(
                (idx + 1, "silent-switch-default",
                 "default: swallows impossible values silently; "
                 "panic() on cases that cannot happen"))


def lint_file(path):
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    allows, file_allows = collect_allows(raw_lines)
    stripped = strip_comments_and_strings(raw)
    lines = stripped.splitlines()

    findings = []
    check_wall_clock(lines, findings)
    check_unordered_iteration(stripped, findings)
    check_raw_new_delete(lines, findings)
    check_silent_switch_default(lines, findings)

    kept = []
    for lineno, rule, msg in findings:
        if rule in file_allows or rule in allows.get(lineno, set()):
            continue
        kept.append((lineno, rule, msg))
    for lineno, waived in allows.items():
        for entry in waived:
            if entry.startswith("__bad__"):
                kept.append(
                    (lineno, "bad-allow",
                     "unknown rule `%s' in simlint allow comment"
                     % entry[len("__bad__"):]))
    return kept


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=pathlib.Path,
                        help="files or directories to lint")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    files = []
    for p in args.paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.cc")))
            files.extend(sorted(p.rglob("*.hh")))
        elif p.exists():
            files.append(p)
        else:
            print("simlint: no such path: %s" % p, file=sys.stderr)
            return 2
    # dcslint's fixture corpus intentionally violates every rule.
    files = [f for f in files if "lint_fixtures" not in f.parts]

    total = 0
    for f in files:
        for lineno, rule, msg in lint_file(f):
            total += 1
            print("%s:%d: [%s] %s" % (f, lineno, rule, msg))
    if not args.quiet:
        print("simlint: %d file(s), %d finding(s)" % (len(files), total))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
