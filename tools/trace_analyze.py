#!/usr/bin/env python3
"""Analyze a DCS-sim Chrome trace (bench --trace output).

Modes:

  trace_analyze.py TRACE.json
      Per-process flow summary: reconstruct every request (flow id)
      from its spans/instants, print its end-to-end latency and a
      per-track time breakdown (the request's critical path through
      the components it visited).

  trace_analyze.py --check TRACE.json
      Structural validation: schema marker, event well-formedness,
      async begin/end balance, and at least one flow that connects
      three or more component tracks. Exit 0 on success.

  trace_analyze.py --crosscheck REPORT.json TRACE.json
      Cross-check the trace against the bench's --json report: the
      mean duration of each process's harness "request" spans must
      match the report's "<design>/total" headline within 1%.

The trace format is emitted by src/sim/tracing.cc (schema marker
"dcs-trace-1"); see docs/OBSERVABILITY.md.
"""

import argparse
import json
import sys
from collections import defaultdict

SCHEMA = "dcs-trace-1"


def fail(msg):
    print(f"trace_analyze: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: not a Chrome trace object")
    return doc


class Process:
    """One dump: name, track names, and per-flow event lists."""

    def __init__(self, pid):
        self.pid = pid
        self.name = f"pid{pid}"
        self.tracks = {}  # tid -> name
        # flow id -> list of (ts_us, dur_us, track, event name)
        self.flows = defaultdict(list)
        self.request_durs = []  # harness "request" span durations


def parse(doc):
    """Index events into Process objects, pairing async b/e spans."""
    procs = {}
    open_async = {}  # (pid, id) -> begin event
    for ev in doc["traceEvents"]:
        pid = ev.get("pid", 0)
        proc = procs.setdefault(pid, Process(pid))
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                proc.name = ev["args"]["name"]
            elif ev.get("name") == "thread_name":
                proc.tracks[ev.get("tid")] = ev["args"]["name"]
            continue
        track = proc.tracks.get(ev.get("tid"), f"tid{ev.get('tid')}")
        flow = (ev.get("args") or {}).get("flow", 0)
        if ph == "X":
            if flow:
                proc.flows[flow].append(
                    (ev["ts"], ev.get("dur", 0.0), track, ev["name"]))
        elif ph == "b":
            open_async[(pid, ev.get("id"))] = (ev, track, flow)
        elif ph == "e":
            key = (pid, ev.get("id"))
            if key not in open_async:
                continue  # tolerated; --check reports imbalance
            b, btrack, bflow = open_async.pop(key)
            dur = ev["ts"] - b["ts"]
            if btrack == "harness" and b["name"] == "request":
                proc.request_durs.append(dur)
            if bflow:
                proc.flows[bflow].append(
                    (b["ts"], dur, btrack, b["name"]))
        elif ph == "i":
            if flow:
                proc.flows[flow].append((ev["ts"], 0.0, track, ev["name"]))
    return procs, open_async


def check(doc, path):
    other = doc.get("otherData", {})
    if other.get("schema") != SCHEMA:
        fail(f"{path}: otherData.schema is {other.get('schema')!r}, "
             f"expected {SCHEMA!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    balance = defaultdict(int)
    for i, ev in enumerate(events):
        for k in ("name", "ph", "ts", "pid", "tid"):
            if k not in ev:
                fail(f"{path}: event #{i} missing key {k!r}: {ev}")
        ph = ev["ph"]
        if ph not in ("M", "X", "b", "e", "i", "C", "s", "t", "f"):
            fail(f"{path}: event #{i} has unknown phase {ph!r}")
        if ph == "X" and "dur" not in ev:
            fail(f"{path}: complete event #{i} missing dur")
        if ph in ("b", "e"):
            balance[(ev["pid"], ev["id"])] += 1 if ph == "b" else -1
    bad = [k for k, v in balance.items() if v != 0]
    if bad:
        fail(f"{path}: {len(bad)} unbalanced async span id(s), "
             f"e.g. pid/id {bad[0]}")

    procs, _ = parse(doc)
    best = 0
    for proc in procs.values():
        for evs in proc.flows.values():
            best = max(best, len({track for _, _, track, _ in evs}))
    if best < 3:
        fail(f"{path}: no flow connects >= 3 tracks "
             f"(best: {best}); request chains are broken")
    n_flows = sum(len(p.flows) for p in procs.values())
    print(f"trace_analyze: OK: {len(events)} events, "
          f"{len(procs)} process(es), {n_flows} flow(s), "
          f"widest flow spans {best} tracks")


def summarize(doc):
    procs, _ = parse(doc)
    for pid in sorted(procs):
        proc = procs[pid]
        if not proc.flows:
            continue
        print(f"\n== {proc.name} ==")
        durs = []
        for flow in sorted(proc.flows):
            evs = sorted(proc.flows[flow])
            start = min(ts for ts, _, _, _ in evs)
            end = max(ts + dur for ts, dur, _, _ in evs)
            durs.append(end - start)
        mean = sum(durs) / len(durs)
        print(f"  {len(durs)} request flow(s); "
              f"mean end-to-end {mean:.2f} us, "
              f"min {min(durs):.2f}, max {max(durs):.2f}")
        # Critical-path breakdown of the last flow (warmed-up state):
        # walk its events in time order and attribute each segment of
        # the timeline to the deepest span covering it.
        flow = sorted(proc.flows)[-1]
        evs = sorted(proc.flows[flow])
        print(f"  flow {flow} walkthrough:")
        for ts, dur, track, name in evs:
            kind = "span " if dur else "event"
            tail = f" +{dur:10.3f} us" if dur else ""
            print(f"    {ts:14.3f} us  {kind} {track:28s} {name}{tail}")
        by_track = defaultdict(float)
        for _, dur, track, _ in evs:
            by_track[track] += dur
        print("  span time by track (overlaps counted per track):")
        for track in sorted(by_track, key=by_track.get, reverse=True):
            if by_track[track] > 0:
                print(f"    {track:32s} {by_track[track]:10.3f} us")


def crosscheck(doc, report_path, tolerance=0.01):
    with open(report_path) as f:
        report = json.load(f)
    headlines = {h["name"]: h["value"] for h in report.get("headlines", [])}
    procs, _ = parse(doc)
    checked = 0
    for proc in procs.values():
        key = f"{proc.name}/total"
        if key not in headlines or not proc.request_durs:
            continue
        mean = sum(proc.request_durs) / len(proc.request_durs)
        want = headlines[key]
        rel = abs(mean - want) / want if want else abs(mean)
        status = "OK" if rel <= tolerance else "FAIL"
        print(f"  {status}: {key}: trace mean {mean:.3f} us vs "
              f"report {want:.3f} us ({100 * rel:.3f}% off)")
        if rel > tolerance:
            fail(f"{key}: trace/report mismatch beyond "
                 f"{100 * tolerance:.0f}%")
        checked += 1
    if checked == 0:
        fail(f"{report_path}: no '<design>/total' headline matched a "
             f"traced process with harness request spans")
    print(f"trace_analyze: OK: {checked} headline(s) cross-checked "
          f"within {100 * tolerance:.0f}%")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON from bench --trace")
    ap.add_argument("--check", action="store_true",
                    help="validate structure and flow connectivity")
    ap.add_argument("--crosscheck", metavar="REPORT",
                    help="bench --json report to compare latencies with")
    ap.add_argument("--tolerance", type=float, default=0.01,
                    help="relative crosscheck tolerance (default 0.01)")
    args = ap.parse_args()

    doc = load(args.trace)
    if args.check:
        check(doc, args.trace)
    if args.crosscheck:
        crosscheck(doc, args.crosscheck, args.tolerance)
    if not args.check and not args.crosscheck:
        summarize(doc)


if __name__ == "__main__":
    main()
