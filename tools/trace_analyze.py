#!/usr/bin/env python3
"""Analyze a DCS-sim Chrome trace (bench --trace output).

Modes:

  trace_analyze.py TRACE.json
      Per-process flow summary: reconstruct every request (flow id)
      from its spans/instants, print its end-to-end latency and a
      per-track time breakdown (the request's critical path through
      the components it visited).

  trace_analyze.py --check TRACE.json
      Structural validation: schema marker, event well-formedness,
      async begin/end balance, and at least one flow that connects
      three or more component tracks. Exit 0 on success.

  trace_analyze.py --crosscheck REPORT.json TRACE.json
      Cross-check the trace against the bench's --json report: the
      mean duration of each process's harness "request" spans must
      match the report's "<design>/total" headline within 1%.

  trace_analyze.py --attribute [--crosscheck REPORT.json] TRACE.json
      Recompute per-request latency attribution from the raw trace
      using the same boundary-chain rules as src/sim/attribution.cc,
      verify the partition property (per flow, the stage sum equals
      the end-to-end latency), and print the per-stage breakdown.
      With --crosscheck, additionally compare every recomputed stage
      mean against the report's in-sim "attribution" stats group
      within --tolerance (default 1%).

The trace format is emitted by src/sim/tracing.cc (schema marker
"dcs-trace-1"); see docs/OBSERVABILITY.md.
"""

import argparse
import json
import sys
from collections import defaultdict

SCHEMA = "dcs-trace-1"


def fail(msg):
    print(f"trace_analyze: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: not a Chrome trace object")
    return doc


class Process:
    """One dump: name, track names, and per-flow event lists."""

    def __init__(self, pid):
        self.pid = pid
        self.name = f"pid{pid}"
        self.tracks = {}  # tid -> name
        # flow id -> list of (ts_us, dur_us, track, event name)
        self.flows = defaultdict(list)
        self.request_durs = []  # harness "request" span durations


def parse(doc):
    """Index events into Process objects, pairing async b/e spans."""
    procs = {}
    open_async = {}  # (pid, id) -> begin event
    for ev in doc["traceEvents"]:
        pid = ev.get("pid", 0)
        proc = procs.setdefault(pid, Process(pid))
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                proc.name = ev["args"]["name"]
            elif ev.get("name") == "thread_name":
                proc.tracks[ev.get("tid")] = ev["args"]["name"]
            continue
        track = proc.tracks.get(ev.get("tid"), f"tid{ev.get('tid')}")
        flow = (ev.get("args") or {}).get("flow", 0)
        if ph == "X":
            if flow:
                proc.flows[flow].append(
                    (ev["ts"], ev.get("dur", 0.0), track, ev["name"]))
        elif ph == "b":
            open_async[(pid, ev.get("id"))] = (ev, track, flow)
        elif ph == "e":
            key = (pid, ev.get("id"))
            if key not in open_async:
                continue  # tolerated; --check reports imbalance
            b, btrack, bflow = open_async.pop(key)
            dur = ev["ts"] - b["ts"]
            if btrack == "harness" and b["name"] == "request":
                proc.request_durs.append(dur)
            if bflow:
                proc.flows[bflow].append(
                    (b["ts"], dur, btrack, b["name"]))
        elif ph == "i":
            if flow:
                proc.flows[flow].append((ev["ts"], 0.0, track, ev["name"]))
    return procs, open_async


def check(doc, path):
    other = doc.get("otherData", {})
    if other.get("schema") != SCHEMA:
        fail(f"{path}: otherData.schema is {other.get('schema')!r}, "
             f"expected {SCHEMA!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    balance = defaultdict(int)
    for i, ev in enumerate(events):
        for k in ("name", "ph", "ts", "pid", "tid"):
            if k not in ev:
                fail(f"{path}: event #{i} missing key {k!r}: {ev}")
        ph = ev["ph"]
        if ph not in ("M", "X", "b", "e", "i", "C", "s", "t", "f"):
            fail(f"{path}: event #{i} has unknown phase {ph!r}")
        if ph == "X" and "dur" not in ev:
            fail(f"{path}: complete event #{i} missing dur")
        if ph in ("b", "e"):
            balance[(ev["pid"], ev["id"])] += 1 if ph == "b" else -1
    bad = [k for k, v in balance.items() if v != 0]
    if bad:
        fail(f"{path}: {len(bad)} unbalanced async span id(s), "
             f"e.g. pid/id {bad[0]}")

    procs, _ = parse(doc)
    best = 0
    for proc in procs.values():
        for evs in proc.flows.values():
            best = max(best, len({track for _, _, track, _ in evs}))
    if best < 3:
        fail(f"{path}: no flow connects >= 3 tracks "
             f"(best: {best}); request chains are broken")
    n_flows = sum(len(p.flows) for p in procs.values())
    print(f"trace_analyze: OK: {len(events)} events, "
          f"{len(procs)} process(es), {n_flows} flow(s), "
          f"widest flow spans {best} tracks")


def summarize(doc):
    procs, _ = parse(doc)
    for pid in sorted(procs):
        proc = procs[pid]
        if not proc.flows:
            continue
        print(f"\n== {proc.name} ==")
        durs = []
        for flow in sorted(proc.flows):
            evs = sorted(proc.flows[flow])
            start = min(ts for ts, _, _, _ in evs)
            end = max(ts + dur for ts, dur, _, _ in evs)
            durs.append(end - start)
        mean = sum(durs) / len(durs)
        print(f"  {len(durs)} request flow(s); "
              f"mean end-to-end {mean:.2f} us, "
              f"min {min(durs):.2f}, max {max(durs):.2f}")
        # Critical-path breakdown of the last flow (warmed-up state):
        # walk its events in time order and attribute each segment of
        # the timeline to the deepest span covering it.
        flow = sorted(proc.flows)[-1]
        evs = sorted(proc.flows[flow])
        print(f"  flow {flow} walkthrough:")
        for ts, dur, track, name in evs:
            kind = "span " if dur else "event"
            tail = f" +{dur:10.3f} us" if dur else ""
            print(f"    {ts:14.3f} us  {kind} {track:28s} {name}{tail}")
        by_track = defaultdict(float)
        for _, dur, track, _ in evs:
            by_track[track] += dur
        print("  span time by track (overlaps counted per track):")
        for track in sorted(by_track, key=by_track.get, reverse=True):
            if by_track[track] > 0:
                print(f"    {track:32s} {by_track[track]:10.3f} us")


def crosscheck(doc, report_path, tolerance=0.01):
    with open(report_path) as f:
        report = json.load(f)
    headlines = {h["name"]: h["value"] for h in report.get("headlines", [])}
    procs, _ = parse(doc)
    checked = 0
    for proc in procs.values():
        key = f"{proc.name}/total"
        if key not in headlines or not proc.request_durs:
            continue
        mean = sum(proc.request_durs) / len(proc.request_durs)
        want = headlines[key]
        rel = abs(mean - want) / want if want else abs(mean)
        status = "OK" if rel <= tolerance else "FAIL"
        print(f"  {status}: {key}: trace mean {mean:.3f} us vs "
              f"report {want:.3f} us ({100 * rel:.3f}% off)")
        if rel > tolerance:
            fail(f"{key}: trace/report mismatch beyond "
                 f"{100 * tolerance:.0f}%")
        checked += 1
    if checked == 0:
        fail(f"{report_path}: no '<design>/total' headline matched a "
             f"traced process with harness request spans")
    print(f"trace_analyze: OK: {checked} headline(s) cross-checked "
          f"within {100 * tolerance:.0f}%")


# ---------------------------------------------------------------------
# Latency attribution recomputation (--attribute).
#
# This is a line-for-line port of the boundary chain in
# src/sim/attribution.cc: the classification table, the min/max
# first-write rules, the monotonic clamp, and the carry-forward for
# unseen boundaries. Change both together.
# ---------------------------------------------------------------------

STAGES = [
    "client_backlog", "driver_submit", "doorbell_holdoff", "sq_wait",
    "engine_parse", "scoreboard_queue", "device_service", "wire",
    "msi_holdoff", "completion_drain",
]

# Boundary indices (chain order); stage k = boundary[k+1] - boundary[k].
(ARRIVE, SUBMIT, DB_POST, DB_FLUSH, PARSE_BEGIN, PARSE_END, EXEC_BEGIN,
 WIRE_BEGIN, CPL_QUEUED, MSI_DISPATCH) = range(10)

# name -> (boundary, take_max) for instants and span starts/ends.
INSTANT_MARKS = {
    "lg_arrive": (ARRIVE, False),
    "db_post": (DB_POST, False),
    "doorbell": (DB_FLUSH, False),
    "cpl_queued": (CPL_QUEUED, True),
    "msi_raised": (CPL_QUEUED, True),
    "msi": (MSI_DISPATCH, True),
}
SPAN_START_MARKS = {
    "submit": SUBMIT, "ioctl": SUBMIT, "io": SUBMIT,
    "parse": PARSE_BEGIN,
    "media_read": EXEC_BEGIN,
    "send": WIRE_BEGIN, "tcp_tx": WIRE_BEGIN,
}


def attribute_flow(evs):
    """Recompute one flow's stage vector.

    Returns (stages_us, e2e_us) or None if the flow never completed
    (no lg_done, or an lg_abort, or a missing arrival)."""
    marks = {}  # boundary -> ts
    done_ts = None

    def mark(b, ts, take_max):
        if b not in marks:
            marks[b] = ts
        elif (ts > marks[b]) if take_max else (ts < marks[b]):
            marks[b] = ts

    for ts, dur, _track, name in evs:
        if name == "lg_abort":
            return None
        if name == "lg_done":
            done_ts = ts
            continue
        if name in INSTANT_MARKS:
            b, take_max = INSTANT_MARKS[name]
            mark(b, ts, take_max)
            continue
        if name in SPAN_START_MARKS:
            mark(SPAN_START_MARKS[name], ts, False)
            if name == "parse":
                mark(PARSE_END, ts + dur, True)
            continue
        if name.startswith("exec:"):
            mark(EXEC_BEGIN, ts, False)

    if done_ts is None or ARRIVE not in marks:
        return None
    # Monotonic clamp + carry-forward: stages partition [arrive, done].
    prev = marks[ARRIVE]
    t0 = prev
    stages = []
    for b in range(ARRIVE + 1, MSI_DISPATCH + 1):
        tb = max(marks[b], prev) if b in marks else prev
        stages.append(tb - prev)
        prev = tb
    end = max(done_ts, prev)
    stages.append(end - prev)  # completion_drain
    return stages, end - t0


def recompute_attribution(procs):
    """proc name -> (count, per-stage mean list, e2e mean)."""
    out = {}
    for proc in procs.values():
        per_stage = [0.0] * len(STAGES)
        e2e_sum = 0.0
        n = 0
        for flow in sorted(proc.flows):
            res = attribute_flow(sorted(proc.flows[flow]))
            if res is None:
                continue
            stages, e2e = res
            # The partition property must hold per flow, exactly
            # (up to float noise): that is the whole construction.
            if abs(sum(stages) - e2e) > 1e-6 * max(1.0, e2e):
                fail(f"{proc.name} flow {flow}: stage sum "
                     f"{sum(stages):.6f} != e2e {e2e:.6f} us")
            for i, s in enumerate(stages):
                per_stage[i] += s
            e2e_sum += e2e
            n += 1
        if n:
            out[proc.name] = (n, [s / n for s in per_stage], e2e_sum / n)
    return out


def attribute(doc, report_path, tolerance):
    procs, _ = parse(doc)
    recomputed = recompute_attribution(procs)
    if not recomputed:
        fail("no completed (lg_arrive..lg_done) flow found; "
             "was the trace taken from a loadgen run?")
    for name in sorted(recomputed):
        n, means, e2e = recomputed[name]
        print(f"\n== {name}: {n} attributed request(s), "
              f"mean e2e {e2e:.3f} us ==")
        for sname, m in sorted(zip(STAGES, means), key=lambda kv: -kv[1]):
            if m > 0:
                print(f"  {sname:20s} {m:10.3f} us "
                      f"({100 * m / e2e:5.1f}%)")
    print(f"\ntrace_analyze: OK: partition property held for all "
          f"{sum(n for n, _, _ in recomputed.values())} flows")

    if not report_path:
        return
    with open(report_path) as f:
        report = json.load(f)
    checked = 0
    for label, groups in (report.get("stats") or {}).items():
        attr = groups.get("attribution")
        if not attr or not attr.get("finalized"):
            continue
        want_n = attr["finalized"]
        # The stats blob is captured for one bench point; find the
        # traced process of the same curve with the same population.
        cands = [k for k in recomputed
                 if k == label or k.split("@")[0] == label]
        match = [k for k in cands if recomputed[k][0] == want_n]
        if not match:
            fail(f"stats '{label}': no traced process matches its "
                 f"{want_n} attributed requests (candidates: "
                 f"{ {k: recomputed[k][0] for k in cands} }); "
                 f"a too-small --trace-buf drops flows")
        n, means, e2e = recomputed[match[0]]
        for sname, got in list(zip(STAGES, means)) + [("e2e", e2e)]:
            want = attr[sname]["mean"]
            # Sub-ns stages are all float dust; compare with a floor.
            rel = abs(got - want) / max(abs(want), 1e-3)
            status = "OK" if rel <= tolerance else "FAIL"
            print(f"  {status}: {label}.{sname}: trace {got:.4f} vs "
                  f"report {want:.4f} us ({100 * rel:.3f}% off)")
            if rel > tolerance:
                fail(f"{label}.{sname}: attribution mismatch beyond "
                     f"{100 * tolerance:.1f}%")
        checked += 1
    if checked == 0:
        fail(f"{report_path}: no stats blob carries a non-empty "
             f"'attribution' group")
    print(f"trace_analyze: OK: {checked} attribution group(s) "
          f"cross-checked within {100 * tolerance:.1f}%")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON from bench --trace")
    ap.add_argument("--check", action="store_true",
                    help="validate structure and flow connectivity")
    ap.add_argument("--crosscheck", metavar="REPORT",
                    help="bench --json report to compare latencies with")
    ap.add_argument("--attribute", action="store_true",
                    help="recompute latency attribution from the trace "
                         "(and cross-check it against --crosscheck)")
    ap.add_argument("--tolerance", type=float, default=0.01,
                    help="relative crosscheck tolerance (default 0.01)")
    args = ap.parse_args()

    doc = load(args.trace)
    if args.check:
        check(doc, args.trace)
    if args.attribute:
        attribute(doc, args.crosscheck, args.tolerance)
    elif args.crosscheck:
        crosscheck(doc, args.crosscheck, args.tolerance)
    if not args.check and not args.crosscheck and not args.attribute:
        summarize(doc)


if __name__ == "__main__":
    main()
