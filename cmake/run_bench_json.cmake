# Script mode (cmake -P): run a bench binary with --json and validate
# the report with tools/check_bench_schema.py. Driven by the
# bench_json_schema ctest; expects BENCH, OUT and CHECKER definitions.
foreach(var BENCH OUT CHECKER)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_bench_json.cmake: ${var} not set")
    endif()
endforeach()

execute_process(
    COMMAND ${BENCH} --json ${OUT}
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --json failed (rc=${bench_rc})")
endif()

find_program(PYTHON3 python3 REQUIRED)
execute_process(
    COMMAND ${PYTHON3} ${CHECKER} ${OUT}
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR "schema validation failed for ${OUT}")
endif()
