file(REMOVE_RECURSE
  "CMakeFiles/micro_size_sweep.dir/micro_size_sweep.cc.o"
  "CMakeFiles/micro_size_sweep.dir/micro_size_sweep.cc.o.d"
  "micro_size_sweep"
  "micro_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
