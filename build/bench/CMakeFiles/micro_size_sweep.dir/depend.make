# Empty dependencies file for micro_size_sweep.
# This may be replaced when dependencies are built.
