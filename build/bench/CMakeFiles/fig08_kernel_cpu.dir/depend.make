# Empty dependencies file for fig08_kernel_cpu.
# This may be replaced when dependencies are built.
