file(REMOVE_RECURSE
  "CMakeFiles/fig12b_hdfs.dir/fig12b_hdfs.cc.o"
  "CMakeFiles/fig12b_hdfs.dir/fig12b_hdfs.cc.o.d"
  "fig12b_hdfs"
  "fig12b_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
