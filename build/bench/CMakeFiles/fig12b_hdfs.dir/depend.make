# Empty dependencies file for fig12b_hdfs.
# This may be replaced when dependencies are built.
