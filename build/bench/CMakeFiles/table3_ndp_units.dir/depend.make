# Empty dependencies file for table3_ndp_units.
# This may be replaced when dependencies are built.
