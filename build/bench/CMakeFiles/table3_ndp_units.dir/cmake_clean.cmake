file(REMOVE_RECURSE
  "CMakeFiles/table3_ndp_units.dir/table3_ndp_units.cc.o"
  "CMakeFiles/table3_ndp_units.dir/table3_ndp_units.cc.o.d"
  "table3_ndp_units"
  "table3_ndp_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ndp_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
