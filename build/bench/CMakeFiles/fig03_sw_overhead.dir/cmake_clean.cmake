file(REMOVE_RECURSE
  "CMakeFiles/fig03_sw_overhead.dir/fig03_sw_overhead.cc.o"
  "CMakeFiles/fig03_sw_overhead.dir/fig03_sw_overhead.cc.o.d"
  "fig03_sw_overhead"
  "fig03_sw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
