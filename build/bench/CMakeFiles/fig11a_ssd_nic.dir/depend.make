# Empty dependencies file for fig11a_ssd_nic.
# This may be replaced when dependencies are built.
