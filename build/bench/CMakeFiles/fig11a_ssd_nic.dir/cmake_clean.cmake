file(REMOVE_RECURSE
  "CMakeFiles/fig11a_ssd_nic.dir/fig11a_ssd_nic.cc.o"
  "CMakeFiles/fig11a_ssd_nic.dir/fig11a_ssd_nic.cc.o.d"
  "fig11a_ssd_nic"
  "fig11a_ssd_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_ssd_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
