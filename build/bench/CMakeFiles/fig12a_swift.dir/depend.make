# Empty dependencies file for fig12a_swift.
# This may be replaced when dependencies are built.
