file(REMOVE_RECURSE
  "CMakeFiles/fig12a_swift.dir/fig12a_swift.cc.o"
  "CMakeFiles/fig12a_swift.dir/fig12a_swift.cc.o.d"
  "fig12a_swift"
  "fig12a_swift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_swift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
