# Empty compiler generated dependencies file for fig11b_ssd_proc_nic.
# This may be replaced when dependencies are built.
