file(REMOVE_RECURSE
  "CMakeFiles/fig11b_ssd_proc_nic.dir/fig11b_ssd_proc_nic.cc.o"
  "CMakeFiles/fig11b_ssd_proc_nic.dir/fig11b_ssd_proc_nic.cc.o.d"
  "fig11b_ssd_proc_nic"
  "fig11b_ssd_proc_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_ssd_proc_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
