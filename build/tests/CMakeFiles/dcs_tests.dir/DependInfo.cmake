
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/dcs_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_dcs_e2e.cc" "tests/CMakeFiles/dcs_tests.dir/test_dcs_e2e.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_dcs_e2e.cc.o.d"
  "/root/repo/tests/test_devices_extra.cc" "tests/CMakeFiles/dcs_tests.dir/test_devices_extra.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_devices_extra.cc.o.d"
  "/root/repo/tests/test_hdc.cc" "tests/CMakeFiles/dcs_tests.dir/test_hdc.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_hdc.cc.o.d"
  "/root/repo/tests/test_hdclib.cc" "tests/CMakeFiles/dcs_tests.dir/test_hdclib.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_hdclib.cc.o.d"
  "/root/repo/tests/test_host.cc" "tests/CMakeFiles/dcs_tests.dir/test_host.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_host.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/dcs_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_multi_device.cc" "tests/CMakeFiles/dcs_tests.dir/test_multi_device.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_multi_device.cc.o.d"
  "/root/repo/tests/test_ndp_codecs.cc" "tests/CMakeFiles/dcs_tests.dir/test_ndp_codecs.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_ndp_codecs.cc.o.d"
  "/root/repo/tests/test_ndp_pool.cc" "tests/CMakeFiles/dcs_tests.dir/test_ndp_pool.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_ndp_pool.cc.o.d"
  "/root/repo/tests/test_nic_features.cc" "tests/CMakeFiles/dcs_tests.dir/test_nic_features.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_nic_features.cc.o.d"
  "/root/repo/tests/test_nic_net.cc" "tests/CMakeFiles/dcs_tests.dir/test_nic_net.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_nic_net.cc.o.d"
  "/root/repo/tests/test_nvme.cc" "tests/CMakeFiles/dcs_tests.dir/test_nvme.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_nvme.cc.o.d"
  "/root/repo/tests/test_page_cache.cc" "tests/CMakeFiles/dcs_tests.dir/test_page_cache.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_page_cache.cc.o.d"
  "/root/repo/tests/test_pcie.cc" "tests/CMakeFiles/dcs_tests.dir/test_pcie.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_pcie.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/dcs_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_robustness.cc" "tests/CMakeFiles/dcs_tests.dir/test_robustness.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_robustness.cc.o.d"
  "/root/repo/tests/test_scoreboard_props.cc" "tests/CMakeFiles/dcs_tests.dir/test_scoreboard_props.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_scoreboard_props.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/dcs_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/dcs_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/dcs_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
