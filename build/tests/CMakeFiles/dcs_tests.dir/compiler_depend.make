# Empty compiler generated dependencies file for dcs_tests.
# This may be replaced when dependencies are built.
