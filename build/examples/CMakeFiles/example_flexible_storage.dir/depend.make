# Empty dependencies file for example_flexible_storage.
# This may be replaced when dependencies are built.
