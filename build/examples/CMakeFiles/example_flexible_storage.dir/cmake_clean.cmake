file(REMOVE_RECURSE
  "CMakeFiles/example_flexible_storage.dir/flexible_storage.cpp.o"
  "CMakeFiles/example_flexible_storage.dir/flexible_storage.cpp.o.d"
  "example_flexible_storage"
  "example_flexible_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flexible_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
