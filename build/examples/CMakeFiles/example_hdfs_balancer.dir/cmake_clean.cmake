file(REMOVE_RECURSE
  "CMakeFiles/example_hdfs_balancer.dir/hdfs_balancer.cpp.o"
  "CMakeFiles/example_hdfs_balancer.dir/hdfs_balancer.cpp.o.d"
  "example_hdfs_balancer"
  "example_hdfs_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hdfs_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
