# Empty dependencies file for example_hdfs_balancer.
# This may be replaced when dependencies are built.
