file(REMOVE_RECURSE
  "CMakeFiles/example_swift_node.dir/swift_node.cpp.o"
  "CMakeFiles/example_swift_node.dir/swift_node.cpp.o.d"
  "example_swift_node"
  "example_swift_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_swift_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
