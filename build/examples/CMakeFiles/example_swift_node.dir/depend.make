# Empty dependencies file for example_swift_node.
# This may be replaced when dependencies are built.
