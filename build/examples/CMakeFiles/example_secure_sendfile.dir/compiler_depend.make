# Empty compiler generated dependencies file for example_secure_sendfile.
# This may be replaced when dependencies are built.
