file(REMOVE_RECURSE
  "CMakeFiles/example_secure_sendfile.dir/secure_sendfile.cpp.o"
  "CMakeFiles/example_secure_sendfile.dir/secure_sendfile.cpp.o.d"
  "example_secure_sendfile"
  "example_secure_sendfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secure_sendfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
