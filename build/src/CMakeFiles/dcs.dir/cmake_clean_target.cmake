file(REMOVE_RECURSE
  "libdcs.a"
)
