# Empty dependencies file for dcs.
# This may be replaced when dependencies are built.
