
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/sw_paths.cc" "src/CMakeFiles/dcs.dir/baselines/sw_paths.cc.o" "gcc" "src/CMakeFiles/dcs.dir/baselines/sw_paths.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/dcs.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/dcs.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/hdc/hdc_engine.cc" "src/CMakeFiles/dcs.dir/hdc/hdc_engine.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdc/hdc_engine.cc.o.d"
  "/root/repo/src/hdc/ndp_pool.cc" "src/CMakeFiles/dcs.dir/hdc/ndp_pool.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdc/ndp_pool.cc.o.d"
  "/root/repo/src/hdc/nic_controller.cc" "src/CMakeFiles/dcs.dir/hdc/nic_controller.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdc/nic_controller.cc.o.d"
  "/root/repo/src/hdc/nvme_controller.cc" "src/CMakeFiles/dcs.dir/hdc/nvme_controller.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdc/nvme_controller.cc.o.d"
  "/root/repo/src/hdc/scoreboard.cc" "src/CMakeFiles/dcs.dir/hdc/scoreboard.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdc/scoreboard.cc.o.d"
  "/root/repo/src/hdc/timing.cc" "src/CMakeFiles/dcs.dir/hdc/timing.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdc/timing.cc.o.d"
  "/root/repo/src/hdclib/hdc_driver.cc" "src/CMakeFiles/dcs.dir/hdclib/hdc_driver.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdclib/hdc_driver.cc.o.d"
  "/root/repo/src/hdclib/hdc_library.cc" "src/CMakeFiles/dcs.dir/hdclib/hdc_library.cc.o" "gcc" "src/CMakeFiles/dcs.dir/hdclib/hdc_library.cc.o.d"
  "/root/repo/src/host/categories.cc" "src/CMakeFiles/dcs.dir/host/categories.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/categories.cc.o.d"
  "/root/repo/src/host/cpu.cc" "src/CMakeFiles/dcs.dir/host/cpu.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/cpu.cc.o.d"
  "/root/repo/src/host/extent_fs.cc" "src/CMakeFiles/dcs.dir/host/extent_fs.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/extent_fs.cc.o.d"
  "/root/repo/src/host/host.cc" "src/CMakeFiles/dcs.dir/host/host.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/host.cc.o.d"
  "/root/repo/src/host/nic_driver.cc" "src/CMakeFiles/dcs.dir/host/nic_driver.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/nic_driver.cc.o.d"
  "/root/repo/src/host/nvme_driver.cc" "src/CMakeFiles/dcs.dir/host/nvme_driver.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/nvme_driver.cc.o.d"
  "/root/repo/src/host/page_cache.cc" "src/CMakeFiles/dcs.dir/host/page_cache.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/page_cache.cc.o.d"
  "/root/repo/src/host/tcp.cc" "src/CMakeFiles/dcs.dir/host/tcp.cc.o" "gcc" "src/CMakeFiles/dcs.dir/host/tcp.cc.o.d"
  "/root/repo/src/mem/chunk_allocator.cc" "src/CMakeFiles/dcs.dir/mem/chunk_allocator.cc.o" "gcc" "src/CMakeFiles/dcs.dir/mem/chunk_allocator.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/dcs.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/dcs.dir/mem/memory.cc.o.d"
  "/root/repo/src/ndp/aes256.cc" "src/CMakeFiles/dcs.dir/ndp/aes256.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/aes256.cc.o.d"
  "/root/repo/src/ndp/crc32.cc" "src/CMakeFiles/dcs.dir/ndp/crc32.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/crc32.cc.o.d"
  "/root/repo/src/ndp/deflate.cc" "src/CMakeFiles/dcs.dir/ndp/deflate.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/deflate.cc.o.d"
  "/root/repo/src/ndp/hash.cc" "src/CMakeFiles/dcs.dir/ndp/hash.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/hash.cc.o.d"
  "/root/repo/src/ndp/md5.cc" "src/CMakeFiles/dcs.dir/ndp/md5.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/md5.cc.o.d"
  "/root/repo/src/ndp/sha1.cc" "src/CMakeFiles/dcs.dir/ndp/sha1.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/sha1.cc.o.d"
  "/root/repo/src/ndp/sha256.cc" "src/CMakeFiles/dcs.dir/ndp/sha256.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/sha256.cc.o.d"
  "/root/repo/src/ndp/transform.cc" "src/CMakeFiles/dcs.dir/ndp/transform.cc.o" "gcc" "src/CMakeFiles/dcs.dir/ndp/transform.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/dcs.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/dcs.dir/net/packet.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/CMakeFiles/dcs.dir/net/wire.cc.o" "gcc" "src/CMakeFiles/dcs.dir/net/wire.cc.o.d"
  "/root/repo/src/nic/nic.cc" "src/CMakeFiles/dcs.dir/nic/nic.cc.o" "gcc" "src/CMakeFiles/dcs.dir/nic/nic.cc.o.d"
  "/root/repo/src/nvme/nvme_ssd.cc" "src/CMakeFiles/dcs.dir/nvme/nvme_ssd.cc.o" "gcc" "src/CMakeFiles/dcs.dir/nvme/nvme_ssd.cc.o.d"
  "/root/repo/src/pcie/device.cc" "src/CMakeFiles/dcs.dir/pcie/device.cc.o" "gcc" "src/CMakeFiles/dcs.dir/pcie/device.cc.o.d"
  "/root/repo/src/pcie/fabric.cc" "src/CMakeFiles/dcs.dir/pcie/fabric.cc.o" "gcc" "src/CMakeFiles/dcs.dir/pcie/fabric.cc.o.d"
  "/root/repo/src/pcie/host_bridge.cc" "src/CMakeFiles/dcs.dir/pcie/host_bridge.cc.o" "gcc" "src/CMakeFiles/dcs.dir/pcie/host_bridge.cc.o.d"
  "/root/repo/src/pcie/link.cc" "src/CMakeFiles/dcs.dir/pcie/link.cc.o" "gcc" "src/CMakeFiles/dcs.dir/pcie/link.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/dcs.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/dcs.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sim/logging.cc.o.d"
  "/root/repo/src/sys/node.cc" "src/CMakeFiles/dcs.dir/sys/node.cc.o" "gcc" "src/CMakeFiles/dcs.dir/sys/node.cc.o.d"
  "/root/repo/src/workload/dropbox_mix.cc" "src/CMakeFiles/dcs.dir/workload/dropbox_mix.cc.o" "gcc" "src/CMakeFiles/dcs.dir/workload/dropbox_mix.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "src/CMakeFiles/dcs.dir/workload/experiment.cc.o" "gcc" "src/CMakeFiles/dcs.dir/workload/experiment.cc.o.d"
  "/root/repo/src/workload/hdfs.cc" "src/CMakeFiles/dcs.dir/workload/hdfs.cc.o" "gcc" "src/CMakeFiles/dcs.dir/workload/hdfs.cc.o.d"
  "/root/repo/src/workload/swift.cc" "src/CMakeFiles/dcs.dir/workload/swift.cc.o" "gcc" "src/CMakeFiles/dcs.dir/workload/swift.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
